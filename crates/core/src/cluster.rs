//! Cluster orchestration: spawn `P` worker threads (plus their comm
//! threads) over a shared in-process fabric and run real distributed
//! training.

use crossbeam_channel::unbounded;

use dear_collectives::{CostModel, DelayFabric, LocalFabric, SegmentConfig, Transport};
use dear_minidnn::{Sequential, Sgd};

use crate::comm::{run_comm_thread, CommJob, CommLayout, CommResult, HyperParams, OptimKind};
use crate::dist_optim::{DistOptim, PipelineMode};
use crate::layout::GroupLayout;
use crate::strategy::ParallelismStrategy;

/// Optional wall-clock network emulation for the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// The α-β model whose `p2p` cost is injected per message.
    pub model: CostModel,
    /// Scale factor on the injected delays (use < 1 to keep runs fast).
    pub scale: f64,
}

/// Training configuration shared by all workers.
///
/// Not `Copy`: [`TrainConfig::strategy`] reserves a composed
/// [`ParallelismStrategy::Hybrid`] variant that owns heap data.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Greedy fusion buffer in bytes; `None` disables fusion.
    pub fusion_buffer: Option<u64>,
    /// The optimizer update rule (SGD by default; Adam supported).
    pub optim: OptimKind,
    /// DeAR or the WFBP baseline.
    pub mode: PipelineMode,
    /// Optional injected network delays.
    pub delay: Option<DelayConfig>,
    /// Segment-pipelining config for the comm thread's collectives,
    /// including the wire dtype. Monolithic f32 by default, where results
    /// are bit-identical to unsegmented collectives; a narrow wire
    /// (`segments.wire = DType::Bf16` / `DType::F16`) halves the bytes of
    /// the gradient/parameter data path while every hop still accumulates
    /// in f32. The control path (broadcast, barrier, optimizer-state
    /// redistribution) always runs over an f32 wire regardless.
    pub segments: SegmentConfig,
    /// What, beyond data parallelism, is sharded across the world (ZeRO
    /// stage selection). `Ddp` by default — bit-identical to the
    /// pre-strategy runtime. `Zero1`/`Zero2` require
    /// [`PipelineMode::Dear`].
    pub strategy: ParallelismStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            fusion_buffer: Some(25 << 20),
            optim: OptimKind::Sgd,
            mode: PipelineMode::Dear,
            delay: None,
            segments: SegmentConfig::MONOLITHIC,
            strategy: ParallelismStrategy::Ddp,
        }
    }
}

impl TrainConfig {
    /// Selects the wire dtype of the data-path collectives (the
    /// mixed-precision knob): gradients and parameters are cast once per
    /// hop to `wire` for transmission and accumulated in f32 on arrival.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not numeric (`U8` is an opaque container for
    /// compressed payloads, not a training wire format).
    #[must_use]
    pub fn with_wire(mut self, wire: dear_collectives::DType) -> Self {
        self.segments = self.segments.with_wire(wire);
        self
    }

    /// Selects the parallelism strategy (ZeRO stage).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ParallelismStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The optimizer hyper-parameters.
    #[must_use]
    pub fn hyper(&self) -> HyperParams {
        HyperParams {
            lr: self.lr,
            momentum: self.momentum,
            weight_decay: self.weight_decay,
            kind: self.optim,
        }
    }
}

/// A worker's handle, passed to the per-rank closure of [`run_training`].
/// Convert it into a [`DistOptim`] once the network is built.
pub struct WorkerHandle {
    rank: usize,
    world: usize,
    config: TrainConfig,
    jobs: crossbeam_channel::Sender<CommJob>,
    results: crossbeam_channel::Receiver<CommResult>,
    layout_tx: crossbeam_channel::Sender<(CommLayout, usize)>,
    trace_scope: String,
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

impl WorkerHandle {
    /// This worker's rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[must_use]
    pub fn world(&self) -> usize {
        self.world
    }

    /// The shared training configuration.
    #[must_use]
    pub fn config(&self) -> TrainConfig {
        self.config.clone()
    }

    /// Builds the distributed optimizer for `net` — the `dear.DistOptim`
    /// wrap of Listing 1. Consumes the handle; call once per worker, with
    /// identically-structured networks on every rank.
    ///
    /// # Panics
    ///
    /// Panics if the configured strategy cannot run under the configured
    /// pipeline mode (ZeRO requires DeAR; `Hybrid` is reserved) — reject
    /// earlier with [`ParallelismStrategy::validate_mode`] for a typed
    /// error.
    #[must_use]
    pub fn into_optim(self, net: &Sequential) -> DistOptim {
        if let Err(e) = self.config.strategy.validate_mode(self.config.mode) {
            panic!("{e}");
        }
        let layout = GroupLayout::from_buffer_wire(
            net,
            self.config.fusion_buffer,
            self.config.segments.wire,
        );
        self.layout_tx
            .send((CommLayout::from(&layout), layout.total_elements()))
            .expect("comm thread hung up before initialization");
        let local_optim: Option<Box<dyn dear_minidnn::Optimizer>> = match self.config.mode {
            PipelineMode::Wfbp => Some(match self.config.optim {
                OptimKind::Sgd => Box::new(Sgd::with_options(
                    self.config.lr,
                    self.config.momentum,
                    self.config.weight_decay,
                )) as Box<dyn dear_minidnn::Optimizer>,
                OptimKind::Adam { beta1, beta2, eps } => {
                    Box::new(dear_minidnn::Adam::with_options(
                        self.config.lr,
                        beta1,
                        beta2,
                        eps,
                        self.config.weight_decay,
                    ))
                }
            }),
            PipelineMode::Dear => None,
        };
        DistOptim::new(
            self.rank,
            self.world,
            self.config.mode,
            layout,
            self.jobs,
            self.results,
            local_optim,
            net.len(),
            &self.trace_scope,
            self.config.segments.wire,
        )
    }
}

/// Runs ONE rank of a distributed job over an arbitrary [`Transport`]: the
/// comm thread is spawned around `transport`, `f` runs on the calling
/// thread with a [`WorkerHandle`], and the comm thread is joined before
/// returning. This is the entry point a real multi-process deployment uses
/// — build a transport (e.g. `dear-net`'s `TcpEndpoint` from `RANK` /
/// `WORLD_SIZE` / `MASTER_ADDR`) and hand it here; [`run_training`] is the
/// in-process convenience that calls this once per rank over a
/// [`LocalFabric`].
///
/// # Panics
///
/// Panics if the comm thread panicked (e.g. a collective failed with a
/// transport error) — by then the worker closure has usually already
/// panicked itself on the dead job channel.
pub fn run_worker<T, F, R>(transport: T, config: TrainConfig, f: F) -> R
where
    T: Transport + Send + 'static,
    F: FnOnce(WorkerHandle) -> R,
{
    let rank = transport.rank();
    let world = transport.world_size();
    let hyper = config.hyper();
    let delay = config.delay;
    let segments = config.segments;
    let strategy = config.strategy.clone();
    // Unique per worker so concurrent in-process clusters never share a
    // trace stream (see `trace`'s stream-naming contract).
    let trace_scope = crate::trace::unique_scope(rank);
    let comm_scope = trace_scope.clone();
    let (job_tx, job_rx) = unbounded::<CommJob>();
    let (res_tx, res_rx) = unbounded::<CommResult>();
    let (layout_tx, layout_rx) = unbounded::<(CommLayout, usize)>();
    // Comm thread: waits for the worker's layout, then serves jobs until
    // the worker drops its job sender.
    let comm = std::thread::spawn(move || {
        let Ok((layout, total)) = layout_rx.recv() else {
            return; // worker dropped its handle without training
        };
        match delay {
            Some(d) => {
                let t = DelayFabric::with_scale(transport, d.model, d.scale);
                run_comm_thread(
                    t,
                    layout,
                    hyper,
                    total,
                    segments,
                    &strategy,
                    &comm_scope,
                    &job_rx,
                    &res_tx,
                );
            }
            None => run_comm_thread(
                transport,
                layout,
                hyper,
                total,
                segments,
                &strategy,
                &comm_scope,
                &job_rx,
                &res_tx,
            ),
        }
    });
    let handle = WorkerHandle {
        rank,
        world,
        config,
        jobs: job_tx,
        results: res_rx,
        layout_tx,
        trace_scope,
    };
    let out = f(handle);
    comm.join().expect("comm thread panicked");
    out
}

/// Spawns `world` workers (each with a companion comm thread over a shared
/// in-process fabric), runs `f` on every rank, and returns the per-rank
/// results in rank order.
///
/// # Panics
///
/// Panics if any worker or comm thread panics.
pub fn run_training<F, R>(world: usize, config: TrainConfig, f: F) -> Vec<R>
where
    F: Fn(WorkerHandle) -> R + Sync,
    R: Send,
{
    let endpoints = LocalFabric::create(world);
    std::thread::scope(|s| {
        let worker_handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let f = &f;
                let config = config.clone();
                s.spawn(move || run_worker(ep, config, f))
            })
            .collect();
        worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Single-process reference: trains `net` with plain S-SGD on the full
/// global batch — the ground truth that distributed runs must match
/// (Eq. 2).
pub fn train_single_reference(
    net: &mut Sequential,
    config: &TrainConfig,
    batches: impl Iterator<Item = (dear_minidnn::Tensor, Vec<usize>)>,
) -> Vec<f32> {
    let mut opt = Sgd::with_options(config.lr, config.momentum, config.weight_decay);
    let mut losses = Vec::new();
    for (x, labels) in batches {
        net.zero_grads();
        let logits = net.forward(&x);
        let (loss, dloss) = dear_minidnn::softmax_cross_entropy(&logits, &labels);
        losses.push(loss);
        net.backward(&dloss);
        opt.step(net);
    }
    losses
}

/// Keeps `DelayFabric` and `Transport` in the public docs' reach without
/// re-exporting the whole collectives crate.
#[doc(hidden)]
pub fn _transport_assertions<T: Transport>(t: &T) -> (usize, usize) {
    (t.rank(), t.world_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_minidnn::{BlobDataset, Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Linear::new(6, 16, &mut rng))
            .push(Relu::new())
            .push(Linear::new(16, 8, &mut rng))
            .push(Relu::new())
            .push(Linear::new(8, 3, &mut rng))
    }

    fn train_distributed(
        world: usize,
        config: TrainConfig,
        steps: u64,
        global_batch: usize,
    ) -> Vec<Vec<f32>> {
        let data = BlobDataset::new(6, 3, 0.4, 99);
        run_training(world, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(7);
            let mut optim = handle.into_optim(&net);
            for step in 0..steps {
                let (x, labels) = data.shard(step, global_batch, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        })
    }

    fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
            .fold(0.0, f32::max)
    }

    #[test]
    fn dear_matches_single_gpu_sgd() {
        let config = TrainConfig {
            fusion_buffer: Some(256), // tiny buffer => several groups
            ..TrainConfig::default()
        };
        let params = train_distributed(4, config.clone(), 20, 32);
        // All ranks agree exactly.
        for p in &params[1..] {
            assert_eq!(&params[0], p, "ranks diverged");
        }
        // And match the single-GPU reference on the full batch.
        let mut reference = build_net(7);
        let data = BlobDataset::new(6, 3, 0.4, 99);
        let _ = train_single_reference(&mut reference, &config, (0..20).map(|s| data.batch(s, 32)));
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 2e-3, "max relative diff {diff}");
    }

    #[test]
    fn dear_with_momentum_matches_reference() {
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            fusion_buffer: Some(1 << 10),
            ..TrainConfig::default()
        };
        let params = train_distributed(3, config.clone(), 15, 30);
        let mut reference = build_net(7);
        let data = BlobDataset::new(6, 3, 0.4, 99);
        let _ = train_single_reference(&mut reference, &config, (0..15).map(|s| data.batch(s, 30)));
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 5e-3, "max relative diff {diff}");
    }

    #[test]
    fn wfbp_mode_matches_dear_mode() {
        let dear = train_distributed(
            4,
            TrainConfig {
                fusion_buffer: Some(512),
                mode: PipelineMode::Dear,
                ..TrainConfig::default()
            },
            12,
            16,
        );
        let wfbp = train_distributed(
            4,
            TrainConfig {
                fusion_buffer: Some(512),
                mode: PipelineMode::Wfbp,
                ..TrainConfig::default()
            },
            12,
            16,
        );
        let diff = max_rel_diff(&dear[0], &wfbp[0]);
        assert!(diff < 2e-3, "DeAR vs WFBP diff {diff}");
    }

    #[test]
    fn unfused_training_works() {
        let config = TrainConfig {
            fusion_buffer: None,
            ..TrainConfig::default()
        };
        let params = train_distributed(2, config, 5, 8);
        assert_eq!(params[0], params[1]);
    }

    #[test]
    fn training_reduces_loss() {
        let data = BlobDataset::new(6, 3, 0.3, 5);
        let losses = run_training(4, TrainConfig::default(), |handle| {
            let rank = handle.rank();
            let mut net = build_net(1);
            let mut optim = handle.into_optim(&net);
            let mut first = 0.0;
            let mut last = 0.0;
            for step in 0..60 {
                let (x, labels) = data.shard(step, 64, rank, 4);
                let loss = optim.train_step(&mut net, &x, &labels).unwrap();
                if step == 0 {
                    first = loss;
                }
                last = loss;
            }
            optim.synchronize(&mut net).unwrap();
            (first, last)
        });
        for (first, last) in losses {
            assert!(last < 0.5 * first, "loss did not drop: {first} -> {last}");
        }
    }

    #[test]
    fn synchronize_then_eval_sees_fresh_params() {
        let data = BlobDataset::new(6, 3, 0.3, 11);
        let accs = run_training(2, TrainConfig::default(), |handle| {
            let rank = handle.rank();
            let mut net = build_net(2);
            let mut optim = handle.into_optim(&net);
            for step in 0..80 {
                let (x, labels) = data.shard(step, 32, rank, 2);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            // Listing 1: synchronize before validation.
            optim.synchronize(&mut net).unwrap();
            let (x, labels) = data.batch(10_000, 128);
            let logits = net.forward(&x);
            dear_minidnn::accuracy(&logits, &labels)
        });
        for acc in accs {
            assert!(acc > 0.8, "validation accuracy {acc}");
        }
    }

    #[test]
    fn adam_matches_single_gpu_reference() {
        let data = BlobDataset::new(6, 3, 0.4, 123);
        let config = TrainConfig {
            lr: 0.01,
            weight_decay: 1e-4,
            fusion_buffer: Some(512),
            optim: OptimKind::adam_default(),
            ..TrainConfig::default()
        };
        let steps = 15u64;
        let params = run_training(4, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(6);
            let mut optim = handle.into_optim(&net);
            for step in 0..steps {
                let (x, labels) = data.shard(step, 32, rank, 4);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        for p in &params[1..] {
            assert_eq!(&params[0], p, "ranks diverged under Adam");
        }
        // Single-process Adam reference on the full global batch.
        let mut reference = build_net(6);
        let mut opt = dear_minidnn::Adam::with_options(0.01, 0.9, 0.999, 1e-8, 1e-4);
        for step in 0..steps {
            let (x, labels) = data.batch(step, 32);
            reference.zero_grads();
            let logits = reference.forward(&x);
            let (_, dloss) = dear_minidnn::softmax_cross_entropy(&logits, &labels);
            reference.backward(&dloss);
            dear_minidnn::Optimizer::step(&mut opt, &mut reference);
        }
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 1e-2, "max relative diff {diff}");
    }

    #[test]
    fn adam_wfbp_mode_matches_dear_mode() {
        let data = BlobDataset::new(6, 3, 0.4, 124);
        let run = |mode: PipelineMode| {
            let config = TrainConfig {
                lr: 0.01,
                fusion_buffer: Some(1 << 10),
                optim: OptimKind::adam_default(),
                mode,
                ..TrainConfig::default()
            };
            run_training(3, config, |handle| {
                let rank = handle.rank();
                let mut net = build_net(2);
                let mut optim = handle.into_optim(&net);
                for step in 0..10 {
                    let (x, labels) = data.shard(step, 30, rank, 3);
                    let _ = optim.train_step(&mut net, &x, &labels);
                }
                optim.synchronize(&mut net).unwrap();
                net.flat_params()
            })
            .remove(0)
        };
        let diff = max_rel_diff(&run(PipelineMode::Dear), &run(PipelineMode::Wfbp));
        assert!(diff < 1e-2, "Adam modes diverged: {diff}");
    }

    #[test]
    fn adam_rebucketing_preserves_moments() {
        let data = BlobDataset::new(6, 3, 0.4, 125);
        let config = TrainConfig {
            lr: 0.01,
            fusion_buffer: Some(256),
            optim: OptimKind::adam_default(),
            ..TrainConfig::default()
        };
        let params = run_training(3, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(8);
            let mut optim = handle.into_optim(&net);
            for step in 0..8 {
                let (x, labels) = data.shard(step, 30, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            optim.set_fusion_buffer(&net, Some(4096));
            for step in 8..16 {
                let (x, labels) = data.shard(step, 30, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        for p in &params[1..] {
            assert_eq!(&params[0], p, "ranks diverged after Adam re-bucketing");
        }
        let mut reference = build_net(8);
        let mut opt = dear_minidnn::Adam::new(0.01);
        for step in 0..16 {
            let (x, labels) = data.batch(step, 30);
            reference.zero_grads();
            let logits = reference.forward(&x);
            let (_, dloss) = dear_minidnn::softmax_cross_entropy(&logits, &labels);
            reference.backward(&dloss);
            dear_minidnn::Optimizer::step(&mut opt, &mut reference);
        }
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 1e-2, "max relative diff {diff}");
    }

    #[test]
    fn bf16_wire_training_converges() {
        // Mixed precision on the wire: gradients cross the fabric as bf16
        // (half the bytes) but every hop accumulates in f32. That rounds
        // each update slightly, so ranks need not bit-match the f32
        // reference — but they must agree with *each other* (the all-gather
        // distributes one rank's updated shard to everyone) and the loss
        // must still collapse.
        use dear_collectives::DType;
        let data = BlobDataset::new(6, 3, 0.3, 5);
        let config = TrainConfig {
            fusion_buffer: Some(512),
            ..TrainConfig::default()
        }
        .with_wire(DType::Bf16);
        let out = run_training(4, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(1);
            let mut optim = handle.into_optim(&net);
            let mut first = 0.0;
            let mut last = 0.0;
            for step in 0..60 {
                let (x, labels) = data.shard(step, 64, rank, 4);
                let loss = optim.train_step(&mut net, &x, &labels).unwrap();
                if step == 0 {
                    first = loss;
                }
                last = loss;
            }
            optim.synchronize(&mut net).unwrap();
            let (x, labels) = data.batch(10_000, 128);
            let logits = net.forward(&x);
            let acc = dear_minidnn::accuracy(&logits, &labels);
            (first, last, acc, net.flat_params())
        });
        for (_, _, _, p) in &out[1..] {
            assert_eq!(&out[0].3, p, "ranks diverged on a bf16 wire");
        }
        for (first, last, acc, _) in &out {
            assert!(
                last < &(0.5 * first),
                "bf16 training did not converge: {first} -> {last}"
            );
            assert!(*acc > 0.8, "bf16 validation accuracy only {acc}");
        }
    }

    #[test]
    fn broadcast_value_is_exact_above_f32_precision() {
        // The BO buffer-size sync broadcasts byte counts above 2^24, where
        // f32 has no integer resolution: 26_214_401 as f32 rounds to
        // 26_214_400, so the old single-f32 broadcast left the root with a
        // different fusion layout than every other rank. The value must
        // round-trip exactly on all ranks, including the root.
        let value = f64::from(25u32 << 20) + 1.0; // 26_214_401.0
        assert_ne!(value as f32 as f64, value, "test value must not fit f32");
        for probe in [value, -value, 1e300, f64::from(u32::MAX) + 2.0, 0.1] {
            let got = run_training(4, TrainConfig::default(), |handle| {
                let net = build_net(3);
                let mut optim = handle.into_optim(&net);
                let sent = if optim.rank() == 1 { probe } else { 0.0 };
                optim.broadcast_value(1, sent)
            });
            assert_eq!(got, vec![probe; 4], "broadcast of {probe} not exact");
        }
    }

    #[test]
    fn lr_schedule_matches_reference() {
        let data = BlobDataset::new(6, 3, 0.4, 42);
        let config = TrainConfig {
            lr: 0.1,
            momentum: 0.9,
            fusion_buffer: Some(512),
            ..TrainConfig::default()
        };
        let params = run_training(3, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(4);
            let mut optim = handle.into_optim(&net);
            for step in 0..16 {
                if step == 8 {
                    // Decay the learning rate mid-training, collectively.
                    optim.synchronize(&mut net).unwrap();
                    optim.set_hyper(0.01, 0.9, 0.0);
                }
                let (x, labels) = data.shard(step, 30, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        for p in &params[1..] {
            assert_eq!(&params[0], p, "ranks diverged under LR schedule");
        }
        // Reference applies the same schedule.
        let mut reference = build_net(4);
        let mut opt = Sgd::with_options(0.1, 0.9, 0.0);
        for step in 0..16u64 {
            if step == 8 {
                opt.set_lr(0.01);
            }
            let (x, labels) = data.batch(step, 30);
            reference.zero_grads();
            let logits = reference.forward(&x);
            let (_, dloss) = dear_minidnn::softmax_cross_entropy(&logits, &labels);
            reference.backward(&dloss);
            opt.step(&mut reference);
        }
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 5e-3, "max relative diff {diff}");
    }

    #[test]
    fn in_place_resize_recovers_training_after_peer_loss() {
        // The full elastic recovery loop over the in-process fabric: train
        // on 4 ranks, kill rank 2 at an iteration boundary, detect the
        // failure through a typed step error, resize the world in place,
        // agree on the resume step, roll back to the boundary snapshot,
        // rebalance the optimizer shards, and keep training on 3 ranks —
        // no restart, and the survivors stay bitwise-identical.
        let data = BlobDataset::new(6, 3, 0.4, 77);
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            fusion_buffer: Some(512),
            ..TrainConfig::default()
        };
        let worker = |handle: WorkerHandle| {
            let rank = handle.rank();
            let mut net = build_net(5);
            let mut optim = handle.into_optim(&net);
            for step in 0..6 {
                let (x, labels) = data.shard(step, 32, rank, 4);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            // Boundary snapshot — the rollback target after peer loss.
            let snap_params = net.flat_params();
            let snap_optim = optim.export_optim_state();
            optim.barrier().unwrap();
            if rank == 2 {
                // Dies abruptly: returning drops the endpoint, and the
                // survivors' next collective fails instead of completing.
                return None;
            }
            // Survivors run until the failure surfaces as a typed error
            // (the step that observes it is garbage and is discarded).
            let mut probe = 6u64;
            loop {
                let (x, labels) = data.shard(probe, 32, rank, 4);
                match optim.train_step(&mut net, &x, &labels) {
                    Ok(_) => probe += 1,
                    Err(_) => break,
                }
            }
            // Reconfigure in place and resume from the agreed snapshot.
            let change = optim
                .resize_world(Some(vec![0, 1, 3]))
                .expect("in-place resize failed");
            assert_eq!(change.new_world, 3);
            let resume = optim.agree_min_step(6).expect("step agreement failed");
            assert_eq!(resume, 6);
            net.set_flat_params(&snap_params);
            optim.import_optim_state(snap_optim);
            optim
                .rebalance_optim_state()
                .expect("shard rebalance failed");
            let (rank, world) = (change.new_rank, change.new_world);
            for step in resume..resume + 6 {
                let (x, labels) = data.shard(step, 30, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            Some(net.flat_params())
        };
        let out: Vec<Option<Vec<f32>>> = std::thread::scope(|s| {
            let handles: Vec<_> = dear_collectives::LocalFabric::create(4)
                .into_iter()
                .map(|ep| {
                    // The local fabric has no failure detector; the receive
                    // deadline is what turns a silent dead neighbor into a
                    // typed error the recovery loop can act on.
                    ep.set_recv_timeout(Some(std::time::Duration::from_millis(500)));
                    let config = config.clone();
                    s.spawn(move || run_worker(ep, config, worker))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let survivors: Vec<_> = out.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3, "exactly the three survivors finish");
        for p in &survivors[1..] {
            assert_eq!(
                &survivors[0], p,
                "survivors diverged after the in-place resize"
            );
        }
    }

    #[test]
    fn zero_strategies_match_ddp_bitwise_and_shrink_optimizer_state() {
        // The tentpole acceptance check, in-process: Zero1/Zero2 must be
        // bit-identical to DDP on the f32 wire — same per-step losses, same
        // final parameters, same exported optimizer state (which also pins
        // the ZeRO partition to the checkpoint shard partition) — while the
        // resident optimizer-state bytes drop by ~world_size.
        let world = 4;
        let data = BlobDataset::new(6, 3, 0.4, 321);
        for optim_kind in [OptimKind::Sgd, OptimKind::adam_default()] {
            let run = |strategy: ParallelismStrategy| {
                let config = TrainConfig {
                    lr: 0.05,
                    momentum: 0.9,
                    weight_decay: 1e-4,
                    fusion_buffer: Some(512),
                    optim: optim_kind,
                    strategy,
                    ..TrainConfig::default()
                };
                run_training(world, config, |handle| {
                    let rank = handle.rank();
                    let mut net = build_net(7);
                    let mut optim = handle.into_optim(&net);
                    let mut losses = Vec::new();
                    for step in 0..12 {
                        let (x, labels) = data.shard(step, 32, rank, world);
                        losses.push(optim.train_step(&mut net, &x, &labels).unwrap());
                    }
                    optim.synchronize(&mut net).unwrap();
                    (
                        losses,
                        net.flat_params(),
                        optim.optim_state_bytes(),
                        optim.export_optim_state(),
                    )
                })
            };
            let ddp = run(ParallelismStrategy::Ddp);
            for strategy in [ParallelismStrategy::Zero1, ParallelismStrategy::Zero2] {
                let zero = run(strategy.clone());
                for rank in 0..world {
                    assert_eq!(
                        ddp[rank].0, zero[rank].0,
                        "{strategy:?} losses diverged from DDP ({optim_kind:?})"
                    );
                    assert_eq!(
                        ddp[rank].1, zero[rank].1,
                        "{strategy:?} parameters diverged from DDP ({optim_kind:?})"
                    );
                    assert_eq!(
                        ddp[rank].3, zero[rank].3,
                        "{strategy:?} exported optimizer state diverged ({optim_kind:?})"
                    );
                    // ~world_size memory drop, with slack for chunk rounding.
                    assert!(
                        (zero[rank].2 as f64) * (world as f64) <= (ddp[rank].2 as f64) * 1.25,
                        "{strategy:?} rank {rank}: resident {} bytes vs DDP {} — \
                         expected a ~{world}x reduction",
                        zero[rank].2,
                        ddp[rank].2
                    );
                }
            }
        }
    }

    #[test]
    fn zero_shard_partition_equals_checkpoint_shard_partition() {
        // The exported (checkpoint) optimizer state is nonzero only inside
        // this rank's owned global ranges, and those ranges are exactly
        // what `ShardMap` stores densely: pack ∘ expand must be the
        // identity on every exported vector, the ranges must be disjoint
        // across ranks, and their union must cover the whole model.
        use crate::comm::ShardMap;
        let world = 3;
        let data = BlobDataset::new(6, 3, 0.4, 55);
        let config = TrainConfig {
            momentum: 0.9,
            fusion_buffer: Some(256),
            ..TrainConfig::default()
        };
        let states = run_training(world, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(7);
            let mut optim = handle.into_optim(&net);
            for step in 0..3 {
                let (x, labels) = data.shard(step, 30, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            optim.export_optim_state()
        });
        let net = build_net(7);
        let layout = GroupLayout::from_buffer(&net, Some(256));
        let comm_layout = CommLayout::from(&layout);
        let total = layout.total_elements();
        let mut covered = vec![false; total];
        for (rank, state) in states.iter().enumerate() {
            let map = ShardMap::build(&comm_layout, rank, world);
            // Support of the checkpoint shard ⊆ owned ranges, bitwise.
            assert_eq!(
                map.expand(&map.pack(&state.velocity), total),
                state.velocity,
                "rank {rank}: checkpoint shard leaks outside the ZeRO partition"
            );
            // Momentum after 3 steps is nonzero somewhere in the shard.
            assert!(
                state.velocity.iter().any(|&v| v != 0.0),
                "rank {rank}: exported shard is all zeros"
            );
            for r in map.owned_ranges() {
                for k in r {
                    assert!(!covered[k], "element {k} owned by two ranks");
                    covered[k] = true;
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "partition does not cover the model"
        );
    }

    #[test]
    fn in_place_resize_recovers_training_under_zero2() {
        // The elastic recovery loop under `--strategy zero2`: kill a rank,
        // resize in place, roll back to the boundary snapshot, rebalance
        // the (dense-sharded) optimizer state under the new world, and keep
        // training — survivors stay bitwise-identical throughout.
        let data = BlobDataset::new(6, 3, 0.4, 78);
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            fusion_buffer: Some(512),
            strategy: ParallelismStrategy::Zero2,
            ..TrainConfig::default()
        };
        let worker = |handle: WorkerHandle| {
            let rank = handle.rank();
            let mut net = build_net(5);
            let mut optim = handle.into_optim(&net);
            for step in 0..6 {
                let (x, labels) = data.shard(step, 32, rank, 4);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            let snap_params = net.flat_params();
            let snap_optim = optim.export_optim_state();
            optim.barrier().unwrap();
            if rank == 2 {
                return None;
            }
            let mut probe = 6u64;
            loop {
                let (x, labels) = data.shard(probe, 32, rank, 4);
                match optim.train_step(&mut net, &x, &labels) {
                    Ok(_) => probe += 1,
                    Err(_) => break,
                }
            }
            let change = optim
                .resize_world(Some(vec![0, 1, 3]))
                .expect("in-place resize failed");
            assert_eq!(change.new_world, 3);
            let resume = optim.agree_min_step(6).expect("step agreement failed");
            net.set_flat_params(&snap_params);
            optim.import_optim_state(snap_optim);
            optim
                .rebalance_optim_state()
                .expect("shard rebalance failed");
            // The dense shard now reflects a 3-way partition.
            let bytes = optim.optim_state_bytes();
            let total_bytes = net.flat_params().len() * std::mem::size_of::<f32>();
            assert!(
                (bytes as f64) * 3.0 <= (total_bytes as f64) * 1.25,
                "post-resize shard not ~1/3 of the model: {bytes} of {total_bytes}"
            );
            let (rank, world) = (change.new_rank, change.new_world);
            for step in resume..resume + 6 {
                let (x, labels) = data.shard(step, 30, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            Some(net.flat_params())
        };
        let out: Vec<Option<Vec<f32>>> = std::thread::scope(|s| {
            let handles: Vec<_> = dear_collectives::LocalFabric::create(4)
                .into_iter()
                .map(|ep| {
                    ep.set_recv_timeout(Some(std::time::Duration::from_millis(500)));
                    let config = config.clone();
                    s.spawn(move || run_worker(ep, config, worker))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let survivors: Vec<_> = out.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3);
        for p in &survivors[1..] {
            assert_eq!(&survivors[0], p, "survivors diverged under Zero2 resize");
        }
    }

    #[test]
    fn rebucketing_mid_training_preserves_correctness() {
        let data = BlobDataset::new(6, 3, 0.4, 99);
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            fusion_buffer: Some(256),
            ..TrainConfig::default()
        };
        let params = run_training(3, config.clone(), |handle| {
            let rank = handle.rank();
            let mut net = build_net(7);
            let mut optim = handle.into_optim(&net);
            for step in 0..10 {
                let (x, labels) = data.shard(step, 30, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            // Re-bucket (as DeAR-BO does), agree via broadcast, continue.
            optim.synchronize(&mut net).unwrap();
            let new_buffer = optim.broadcast_value(0, 2048.0) as u64;
            optim.set_fusion_buffer(&net, Some(new_buffer));
            for step in 10..20 {
                let (x, labels) = data.shard(step, 30, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        for p in &params[1..] {
            assert_eq!(&params[0], p, "ranks diverged after re-bucketing");
        }
        // Matches the single-GPU reference (momentum state survived).
        let mut reference = build_net(7);
        let _ = train_single_reference(&mut reference, &config, (0..20).map(|s| data.batch(s, 30)));
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 5e-3, "max relative diff {diff}");
    }
}

//! The `ParallelismStrategy` layer: what, beyond data parallelism, is
//! sharded across the world.
//!
//! DeAR's decoupling — all-reduce = reduce-scatter ∘ all-gather — is the
//! exact primitive pair ZeRO-1/2 is built from. After OP1.RS every rank
//! holds the reduced gradients of the shard it owns; the comm thread
//! already updates only that shard and OP2.AG redistributes the updated
//! parameters. The strategies below only change *what state is resident*
//! between those two points — the wire traffic is identical for all of
//! them, so `Zero1`/`Zero2` are bit-identical to `Ddp` on an f32 wire
//! while per-rank optimizer-state bytes drop by ~`world_size`.

/// How training state is partitioned across ranks. Selects the resident
/// layout of the comm thread's optimizer state (and, for
/// [`ParallelismStrategy::Zero2`], of the between-phase gradient /
/// parameter stash); the collective schedule is the same decoupled
/// RS ∘ AG pipeline in every case.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ParallelismStrategy {
    /// Plain data parallelism: every rank keeps full-length optimizer
    /// vectors (entries outside its shard stay zero). Today's behaviour,
    /// bit-for-bit.
    #[default]
    Ddp,
    /// ZeRO stage 1: optimizer state (momentum / Adam moments) is stored
    /// densely for the owned shard only — resident bytes drop by
    /// ~`world_size` with zero extra collectives.
    Zero1,
    /// ZeRO stage 2: [`ParallelismStrategy::Zero1`] plus sharded residency
    /// of the comm-side gradient/parameter stash between OP1.RS and
    /// OP2.AG — only the owned chunk of each fused group is kept; the
    /// full buffer is rematerialized just-in-time for the all-gather.
    Zero2,
    /// Reserved for composed strategies (e.g. ZeRO × tensor parallel).
    /// Constructible for forward compatibility but rejected by every
    /// runtime entry point and by the parser.
    Hybrid(Vec<ParallelismStrategy>),
}

/// Typed rejection of a strategy string or an unusable strategy/mode
/// combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyError {
    /// What was rejected and why.
    pub reason: String,
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid parallelism strategy: {}", self.reason)
    }
}

impl std::error::Error for StrategyError {}

impl ParallelismStrategy {
    /// Whether optimizer state is stored densely for the owned shard only.
    #[must_use]
    pub fn shards_optimizer_state(&self) -> bool {
        matches!(
            self,
            ParallelismStrategy::Zero1 | ParallelismStrategy::Zero2
        )
    }

    /// Whether the comm-side stash between OP1.RS and OP2.AG keeps only
    /// the owned chunk of each group.
    #[must_use]
    pub fn shards_grad_stash(&self) -> bool {
        matches!(self, ParallelismStrategy::Zero2)
    }

    /// The canonical spelling accepted back by [`str::parse`].
    ///
    /// # Panics
    ///
    /// Panics on [`ParallelismStrategy::Hybrid`], which has no canonical
    /// config spelling yet (it is reserved and unparsable).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ParallelismStrategy::Ddp => "ddp",
            ParallelismStrategy::Zero1 => "zero1",
            ParallelismStrategy::Zero2 => "zero2",
            ParallelismStrategy::Hybrid(_) => panic!("Hybrid is reserved and has no spelling"),
        }
    }

    /// Rejects combinations the runtime cannot execute: ZeRO needs the
    /// decoupled DeAR pipeline (WFBP all-reduces full gradients and
    /// updates locally — there is no shard to own), and `Hybrid` is
    /// reserved.
    ///
    /// # Errors
    ///
    /// Returns a [`StrategyError`] naming the unusable combination.
    pub fn validate_mode(&self, mode: crate::PipelineMode) -> Result<(), StrategyError> {
        match self {
            ParallelismStrategy::Hybrid(_) => Err(StrategyError {
                reason: "Hybrid is reserved and not yet runnable".to_string(),
            }),
            ParallelismStrategy::Zero1 | ParallelismStrategy::Zero2
                if mode != crate::PipelineMode::Dear =>
            {
                Err(StrategyError {
                    reason: format!(
                        "{self:?} requires the DeAR pipeline (reduce-scatter owns the shard); \
                         WFBP has no sharded state to keep"
                    ),
                })
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for ParallelismStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelismStrategy::Hybrid(parts) => {
                write!(f, "hybrid(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            other => f.write_str(other.as_str()),
        }
    }
}

impl std::str::FromStr for ParallelismStrategy {
    type Err = StrategyError;

    /// Accepts `ddp`, `zero1`/`zero-1`, `zero2`/`zero-2` (case-insensitive).
    /// `hybrid` is recognized but refused as reserved; anything else is
    /// rejected with the list of valid spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ddp" => Ok(ParallelismStrategy::Ddp),
            "zero1" | "zero-1" => Ok(ParallelismStrategy::Zero1),
            "zero2" | "zero-2" => Ok(ParallelismStrategy::Zero2),
            "hybrid" => Err(StrategyError {
                reason: "'hybrid' is reserved and not yet runnable".to_string(),
            }),
            other => Err(StrategyError {
                reason: format!("unknown strategy {other:?} (expected ddp, zero1 or zero2)"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineMode;

    #[test]
    fn parse_round_trips_every_runnable_strategy() {
        for s in [
            ParallelismStrategy::Ddp,
            ParallelismStrategy::Zero1,
            ParallelismStrategy::Zero2,
        ] {
            let spelled = s.as_str();
            assert_eq!(spelled.parse::<ParallelismStrategy>().unwrap(), s);
            // Case and dash variants round-trip too.
            assert_eq!(
                spelled
                    .to_uppercase()
                    .parse::<ParallelismStrategy>()
                    .unwrap(),
                s
            );
        }
        assert_eq!(
            "zero-1".parse::<ParallelismStrategy>().unwrap(),
            ParallelismStrategy::Zero1
        );
        assert_eq!(
            "zero-2".parse::<ParallelismStrategy>().unwrap(),
            ParallelismStrategy::Zero2
        );
    }

    #[test]
    fn invalid_strategies_are_rejected_with_typed_errors() {
        let err = "zero3".parse::<ParallelismStrategy>().unwrap_err();
        assert!(err.reason.contains("zero3"), "{err}");
        assert!(err.to_string().contains("invalid parallelism strategy"));
        let err = "hybrid".parse::<ParallelismStrategy>().unwrap_err();
        assert!(err.reason.contains("reserved"), "{err}");
    }

    #[test]
    fn zero_requires_the_dear_pipeline() {
        assert!(ParallelismStrategy::Ddp
            .validate_mode(PipelineMode::Wfbp)
            .is_ok());
        assert!(ParallelismStrategy::Zero1
            .validate_mode(PipelineMode::Dear)
            .is_ok());
        let err = ParallelismStrategy::Zero2
            .validate_mode(PipelineMode::Wfbp)
            .unwrap_err();
        assert!(err.reason.contains("DeAR pipeline"), "{err}");
        let err = ParallelismStrategy::Hybrid(vec![ParallelismStrategy::Zero1])
            .validate_mode(PipelineMode::Dear)
            .unwrap_err();
        assert!(err.reason.contains("reserved"), "{err}");
    }

    #[test]
    fn sharding_predicates_match_the_stage_definitions() {
        assert!(!ParallelismStrategy::Ddp.shards_optimizer_state());
        assert!(ParallelismStrategy::Zero1.shards_optimizer_state());
        assert!(!ParallelismStrategy::Zero1.shards_grad_stash());
        assert!(ParallelismStrategy::Zero2.shards_optimizer_state());
        assert!(ParallelismStrategy::Zero2.shards_grad_stash());
    }
}

//! End-to-end check of the observability layer over a real in-process
//! DeAR run: spans land on the right streams, OP1 spans never overlap on
//! one stream, and measured exposed communication never exceeds total
//! communication.

use dear_core::trace::{self, OverlapSummary, TaskKind};
use dear_core::{run_training, TrainConfig};
use dear_minidnn::{BlobDataset, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Linear::new(6, 16, &mut rng))
        .push(Relu::new())
        .push(Linear::new(16, 8, &mut rng))
        .push(Relu::new())
        .push(Linear::new(8, 3, &mut rng))
}

#[test]
fn traced_dear_run_produces_serial_non_empty_streams() {
    trace::set_enabled(true);
    trace::clear();

    let world = 2;
    let steps = 4;
    let global_batch = 16;
    let config = TrainConfig {
        lr: 0.05,
        ..TrainConfig::default()
    };
    let data = BlobDataset::new(6, 3, 0.4, 99);
    run_training(world, config, |handle| {
        let rank = handle.rank();
        let mut net = build_net(7);
        let mut optim = handle.into_optim(&net);
        for step in 0..steps {
            let (x, labels) = data.shard(step, global_batch, rank, world);
            let _ = optim.train_step(&mut net, &x, &labels);
        }
        optim.synchronize(&mut net).unwrap();
    });
    trace::set_enabled(false);

    let groups = trace::timeline_groups();
    assert_eq!(groups.len(), world, "one trace group per rank");
    for (scope, tl) in &groups {
        // Spans recorded through the guard API carry real wall-clock
        // timestamps from one thread each, so every stream must be serial
        // — OP1 reduce-scatter spans in particular never overlap.
        tl.assert_streams_serial();

        let mut op1 = 0usize;
        let mut op2 = 0usize;
        let mut ff = 0usize;
        let mut bp = 0usize;
        for task in tl.tasks() {
            let stream = tl.stream_name(task.stream);
            if task.label.starts_with("OP1.RS") {
                assert!(
                    stream.ends_with("/comm"),
                    "OP1 span on unexpected stream {stream}"
                );
                assert_eq!(task.kind, TaskKind::Communication);
                op1 += 1;
            }
            if task.label.starts_with("OP2.AG") {
                op2 += 1;
            }
            if task.label.starts_with("FF[") {
                assert_eq!(task.kind, TaskKind::FeedForward);
                ff += 1;
            }
            if task.label.starts_with("BP[") {
                assert_eq!(task.kind, TaskKind::Backprop);
                bp += 1;
            }
        }
        assert!(op1 > 0, "{scope}: no OP1 reduce-scatter spans recorded");
        assert!(op2 > 0, "{scope}: no OP2 all-gather spans recorded");
        assert!(ff >= steps as usize, "{scope}: missing feed-forward spans");
        assert_eq!(bp, steps as usize, "{scope}: missing backprop spans");

        let summary = OverlapSummary::from_timeline(tl);
        assert!(
            summary.comm.as_nanos() > 0,
            "{scope}: no communication time measured"
        );
        assert!(
            summary.exposed <= summary.comm,
            "{scope}: exposed comm exceeds total comm"
        );
        assert!(summary.makespan >= summary.compute, "{scope}: bad makespan");
        let line = summary.to_line(scope);
        assert!(line.contains("overlap="), "summary line malformed: {line}");
    }

    trace::clear();
}

//! Deterministic chaos injection for the elastic launcher.
//!
//! A [`ChaosPlan`] is a seeded, pre-generated schedule of faults — kill a
//! random rank, or stall one with `SIGSTOP` for a while — that the
//! supervisor applies while a world runs. Stalls exercise the heartbeat
//! failure detector specifically: a stopped process keeps its sockets
//! open, so only missing heartbeats reveal it. Because the plan is a pure
//! function of its seed, a chaotic run is reproducible, and the harness
//! can assert that training under chaos converges to the same result as
//! an unperturbed run (checkpoints + restarts make the final model
//! identical either way).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// `SIGKILL` the victim — an abrupt crash, no graceful shutdown.
    Kill,
    /// `SIGSTOP` the victim for the given duration, then `SIGCONT` — a
    /// wedged-but-connected process, visible only to the failure detector.
    Stall(Duration),
}

/// A scheduled fault: at `at` after the world first starts, apply
/// `action` to rank `victim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset from the start of the (first) launch.
    pub at: Duration,
    /// The rank the fault hits.
    pub victim: usize,
    /// What happens to it.
    pub action: ChaosAction,
}

/// A reproducible schedule of faults, sorted by time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// The events, ascending by [`ChaosEvent::at`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generates `count` events for a `world`-rank job, spread uniformly
    /// over `window` after launch, from `seed`. Same inputs, same plan.
    ///
    /// Kills and stalls alternate by coin flip; stall lengths are drawn
    /// between 200 ms and 1.5 s — long enough to trip a test-tuned
    /// heartbeat budget, short enough for quick harness runs.
    #[must_use]
    pub fn generate(seed: u64, world: usize, count: usize, window: Duration) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events: Vec<ChaosEvent> = (0..count)
            .map(|_| {
                let at = Duration::from_millis(rng.gen_range(0..window.as_millis().max(1) as u64));
                let victim = rng.gen_range(0..world.max(1));
                let action = if rng.gen_bool(0.5) {
                    ChaosAction::Kill
                } else {
                    ChaosAction::Stall(Duration::from_millis(rng.gen_range(200..1500)))
                };
                ChaosEvent { at, victim, action }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        ChaosPlan { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = ChaosPlan::generate(7, 4, 6, Duration::from_secs(3));
        let b = ChaosPlan::generate(7, 4, 6, Duration::from_secs(3));
        assert_eq!(a, b);
        let c = ChaosPlan::generate(8, 4, 6, Duration::from_secs(3));
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn events_are_sorted_and_in_bounds() {
        let plan = ChaosPlan::generate(99, 4, 32, Duration::from_secs(2));
        assert_eq!(plan.events.len(), 32);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &plan.events {
            assert!(e.victim < 4);
            assert!(e.at < Duration::from_secs(2));
            if let ChaosAction::Stall(d) = e.action {
                assert!(d >= Duration::from_millis(200) && d < Duration::from_millis(1500));
            }
        }
    }

    #[test]
    fn empty_plan_is_a_no_op_schedule() {
        let plan = ChaosPlan::generate(1, 4, 0, Duration::from_secs(1));
        assert!(plan.events.is_empty());
        assert_eq!(plan, ChaosPlan::default());
    }
}

//! Multi-process launching: spawn `world` copies of a worker command with
//! the rendezvous environment (`RANK`, `WORLD_SIZE`, `MASTER_ADDR`,
//! `MASTER_PORT`) set per rank, supervise them, and propagate failures —
//! the moral equivalent of `torchrun`/`mpirun` for this repository.

use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

use crate::config::NetError;

/// How one launched world finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldOutcome {
    /// Every rank exited with status 0.
    AllExitedCleanly,
}

/// Options for [`launch_world`].
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Number of worker processes.
    pub world: usize,
    /// Rendezvous host workers connect to (rank 0 binds it). Defaults to
    /// loopback.
    pub master_host: String,
    /// Rendezvous port; `None` picks a free ephemeral port.
    pub master_port: Option<u16>,
    /// Overall wall-clock budget; on expiry every worker is killed and the
    /// launch fails with [`NetError::Timeout`]. `None` waits forever.
    pub timeout: Option<Duration>,
    /// Extra `(name, value)` environment entries for every worker.
    pub env: Vec<(String, String)>,
}

impl LaunchOptions {
    /// Options for `world` workers rendezvousing on loopback.
    #[must_use]
    pub fn new(world: usize) -> Self {
        LaunchOptions {
            world,
            master_host: "127.0.0.1".to_string(),
            master_port: None,
            timeout: None,
            env: Vec::new(),
        }
    }
}

/// Asks the OS for a currently-free TCP port on loopback. The port is
/// released before returning, so a race is possible but unlikely; rank 0
/// rebinding it immediately makes this good enough for tests and
/// single-host launches.
///
/// # Errors
///
/// Returns [`NetError::Io`] if no ephemeral port can be bound at all.
pub fn free_port() -> Result<u16, NetError> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
        .map_err(|e| NetError::io("probing for a free port", e))?;
    let port = listener
        .local_addr()
        .map_err(|e| NetError::io("reading probed port", e))?
        .port();
    Ok(port)
}

/// Spawns `opts.world` copies of `command` (argv, first element is the
/// program) with per-rank rendezvous environment, then supervises them:
///
/// - if every rank exits 0, returns [`WorldOutcome::AllExitedCleanly`];
/// - the first rank to exit non-zero (or die to a signal) gets the
///   remaining ranks killed, and the launch fails with the failing rank's
///   status in the error;
/// - if `opts.timeout` expires first, everything is killed and the launch
///   fails with [`NetError::Timeout`].
///
/// # Errors
///
/// Returns [`NetError`] as described above, or [`NetError::Config`] /
/// [`NetError::Io`] when the command is empty or cannot be spawned.
pub fn launch_world(command: &[String], opts: &LaunchOptions) -> Result<WorldOutcome, NetError> {
    let Some((program, args)) = command.split_first() else {
        return Err(NetError::Config("empty worker command".to_string()));
    };
    if opts.world == 0 {
        return Err(NetError::Config("world size must be positive".to_string()));
    }
    let port = match opts.master_port {
        Some(p) => p,
        None => free_port()?,
    };
    let mut children: Vec<Option<Child>> = Vec::with_capacity(opts.world);
    for rank in 0..opts.world {
        let mut cmd = Command::new(program);
        cmd.args(args)
            .env("RANK", rank.to_string())
            .env("WORLD_SIZE", opts.world.to_string())
            .env("MASTER_ADDR", &opts.master_host)
            .env("MASTER_PORT", port.to_string())
            .stdin(std::process::Stdio::null());
        for (k, v) in &opts.env {
            cmd.env(k, v);
        }
        match cmd.spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                kill_all(&mut children);
                return Err(NetError::io(format!("spawning rank {rank} ({program})"), e));
            }
        }
    }
    supervise(&mut children, opts.timeout)
}

/// Polls the children until all exit cleanly, one fails, or the deadline
/// expires; kills the survivors in the latter two cases.
fn supervise(
    children: &mut [Option<Child>],
    timeout: Option<Duration>,
) -> Result<WorldOutcome, NetError> {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        let mut all_done = true;
        for rank in 0..children.len() {
            let Some(child) = children[rank].as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    children[rank] = None;
                }
                Ok(Some(status)) => {
                    kill_all(children);
                    return Err(NetError::Protocol(format!(
                        "worker rank {rank} failed: {}",
                        describe(status)
                    )));
                }
                Ok(None) => all_done = false,
                Err(e) => {
                    kill_all(children);
                    return Err(NetError::io(format!("waiting on rank {rank}"), e));
                }
            }
        }
        if all_done {
            return Ok(WorldOutcome::AllExitedCleanly);
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                kill_all(children);
                return Err(NetError::Timeout {
                    context: "waiting for the worker world to finish".to_string(),
                    after: timeout.unwrap_or_default(),
                });
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn kill_all(children: &mut [Option<Child>]) {
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        if let Some(mut c) = child.take() {
            let _ = c.wait();
        }
    }
}

fn describe(status: ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "killed by a signal".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_port_is_bindable() {
        let port = free_port().unwrap();
        assert!(port > 0);
        // Typically still free immediately afterwards.
        let rebind = std::net::TcpListener::bind(("127.0.0.1", port));
        assert!(rebind.is_ok(), "probed port was not rebindable");
    }

    #[test]
    fn empty_command_is_rejected() {
        let err = launch_world(&[], &LaunchOptions::new(2)).unwrap_err();
        assert!(matches!(err, NetError::Config(_)));
    }

    #[test]
    fn clean_world_exits_cleanly() {
        let cmd = vec!["true".to_string()];
        let out = launch_world(&cmd, &LaunchOptions::new(3)).unwrap();
        assert_eq!(out, WorldOutcome::AllExitedCleanly);
    }

    #[test]
    fn failing_worker_fails_the_launch() {
        let cmd = vec!["false".to_string()];
        let err = launch_world(&cmd, &LaunchOptions::new(2)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "got {err}");
    }

    #[test]
    fn timeout_kills_a_stuck_world() {
        let cmd = vec!["sleep".to_string(), "30".to_string()];
        let mut opts = LaunchOptions::new(2);
        opts.timeout = Some(Duration::from_millis(200));
        let start = Instant::now();
        let err = launch_world(&cmd, &opts).unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }), "got {err}");
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}

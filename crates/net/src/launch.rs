//! Multi-process launching: spawn `world` copies of a worker command with
//! the rendezvous environment (`RANK`, `WORLD_SIZE`, `MASTER_ADDR`,
//! `MASTER_PORT`) set per rank, supervise them, and propagate failures —
//! the moral equivalent of `torchrun`/`mpirun` for this repository.
//!
//! [`launch_world_elastic`] adds the supervised-restart layer: when a
//! rank dies, the survivors are killed, the supervisor backs off
//! exponentially, and the whole world is relaunched on a fresh rendezvous
//! port with `DEAR_GENERATION` bumped — workers resume from their latest
//! checkpoint (see `dear_core::checkpoint`). The optional
//! [`ChaosPlan`](crate::ChaosPlan) lets the supervisor itself inject
//! crashes and `SIGSTOP` stalls on a deterministic schedule, which is how
//! the fault-tolerance tests drive the failure detector end to end.
//!
//! All spawned children live inside a [`WorldGuard`]: a kill-on-drop
//! owner, so a supervisor panic (or early `?` return) mid-launch can
//! never orphan worker processes.

use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

use crate::chaos::{ChaosAction, ChaosEvent, ChaosPlan};
use crate::config::NetError;

/// How one launched world finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldOutcome {
    /// Every rank exited with status 0.
    AllExitedCleanly,
    /// Some ranks died mid-run, but the launch was configured to tolerate
    /// departures ([`LaunchOptions::tolerate_departures`], the in-place
    /// resize mode) and every surviving rank exited 0 — the world resized
    /// around the losses instead of restarting.
    SurvivedDepartures {
        /// Ranks (by launch index) that exited non-zero or died to a
        /// signal, in the order their deaths were observed.
        departed: Vec<usize>,
    },
}

/// How an elastic (restartable) launch finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticOutcome {
    /// Restarts consumed; 0 means the first generation ran to completion.
    pub restarts: u32,
    /// The generation that completed (equals `restarts`).
    pub generation: u64,
}

/// Restart policy for [`launch_world_elastic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartPolicy {
    /// World relaunches allowed after the initial attempt.
    pub max_restarts: u32,
    /// Delay before the first relaunch; doubles per restart.
    pub backoff: Duration,
    /// Upper bound for the doubled backoff.
    pub backoff_cap: Duration,
}

impl RestartPolicy {
    /// A policy allowing `max_restarts` relaunches with a 250 ms initial
    /// backoff, doubling up to 5 s.
    #[must_use]
    pub fn new(max_restarts: u32) -> Self {
        RestartPolicy {
            max_restarts,
            backoff: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Owns spawned worker processes and kills whatever is still running when
/// dropped — the guarantee that no supervisor exit path (panic, `?`, chaos
/// teardown) leaves orphaned workers holding ports and CPUs.
#[derive(Debug, Default)]
pub struct WorldGuard {
    children: Vec<Option<Child>>,
}

impl WorldGuard {
    /// Takes ownership of a spawned child.
    pub fn adopt(&mut self, child: Child) {
        self.children.push(Some(child));
    }

    /// OS process ids of the children still owned (not yet reaped).
    #[must_use]
    pub fn pids(&self) -> Vec<u32> {
        self.children.iter().flatten().map(Child::id).collect()
    }

    fn slots(&mut self) -> &mut [Option<Child>] {
        &mut self.children
    }
}

impl Drop for WorldGuard {
    fn drop(&mut self) {
        kill_all(&mut self.children);
    }
}

/// Options for [`launch_world`].
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Number of worker processes.
    pub world: usize,
    /// Rendezvous host workers connect to (rank 0 binds it). Defaults to
    /// loopback.
    pub master_host: String,
    /// Rendezvous port; `None` picks a free ephemeral port.
    pub master_port: Option<u16>,
    /// Overall wall-clock budget; on expiry every worker is killed and the
    /// launch fails with [`NetError::Timeout`]. `None` waits forever.
    pub timeout: Option<Duration>,
    /// Extra `(name, value)` environment entries for every worker.
    pub env: Vec<(String, String)>,
    /// Keep supervising when a rank dies instead of killing the world:
    /// the surviving workers are expected to resize in place (see
    /// `DEAR_ELASTIC_RESIZE`), so a death is logged and tolerated, and the
    /// launch succeeds with [`WorldOutcome::SurvivedDepartures`] as long
    /// as at least one rank finishes cleanly. Off by default — the
    /// classic kill-and-restart supervision.
    pub tolerate_departures: bool,
}

impl LaunchOptions {
    /// Options for `world` workers rendezvousing on loopback.
    #[must_use]
    pub fn new(world: usize) -> Self {
        LaunchOptions {
            world,
            master_host: "127.0.0.1".to_string(),
            master_port: None,
            timeout: None,
            env: Vec::new(),
            tolerate_departures: false,
        }
    }
}

/// Asks the OS for a currently-free TCP port on loopback.
///
/// The probe is inherently TOCTOU against *other processes* — the port is
/// released before returning — and that side is closed where it must be:
/// the rendezvous master retries `AddrInUse` with backoff when it binds
/// (`TcpEndpoint`), rather than trusting the probe. What this function
/// closes is the *in-process* race: the kernel happily re-issues an
/// ephemeral port the moment its probe listener drops, so concurrent
/// launches (parallel tests, back-to-back elastic generations) used to be
/// handed the same "fresh" port. Recently issued ports are remembered in a
/// process-wide ring and skipped, with the probe retried until the OS
/// offers one not handed out lately.
///
/// # Errors
///
/// Returns [`NetError::Io`] if no ephemeral port can be bound at all, or
/// [`NetError::Config`] if every probe lands on a recently issued port
/// (pathological ephemeral-range exhaustion).
pub fn free_port() -> Result<u16, NetError> {
    use std::sync::Mutex;
    // How many recently issued ports to refuse to re-issue. Large enough
    // to cover every port a test run's worth of concurrent launches holds
    // between probe and bind; tiny against the ~28k ephemeral range.
    const REMEMBER: usize = 64;
    static RECENT: Mutex<Vec<u16>> = Mutex::new(Vec::new());
    for _ in 0..4 * REMEMBER {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| NetError::io("probing for a free port", e))?;
        let port = listener
            .local_addr()
            .map_err(|e| NetError::io("reading probed port", e))?
            .port();
        let mut recent = RECENT.lock().expect("free-port registry poisoned");
        if recent.contains(&port) {
            continue;
        }
        if recent.len() == REMEMBER {
            recent.remove(0);
        }
        recent.push(port);
        return Ok(port);
    }
    Err(NetError::Config(
        "every probed ephemeral port was issued recently; port range exhausted?".to_string(),
    ))
}

/// Spawns `opts.world` copies of `command` (argv, first element is the
/// program) with per-rank rendezvous environment, then supervises them:
///
/// - if every rank exits 0, returns [`WorldOutcome::AllExitedCleanly`];
/// - the first rank to exit non-zero (or die to a signal) gets the
///   remaining ranks killed, and the launch fails with the failing rank's
///   status in the error — unless
///   [`tolerate_departures`](LaunchOptions::tolerate_departures) is set,
///   in which case the death is logged, the survivors keep running (they
///   are expected to resize in place), and the launch succeeds with
///   [`WorldOutcome::SurvivedDepartures`] provided at least one rank
///   finishes cleanly;
/// - if `opts.timeout` expires first, everything is killed and the launch
///   fails with [`NetError::Timeout`].
///
/// # Errors
///
/// Returns [`NetError`] as described above, or [`NetError::Config`] /
/// [`NetError::Io`] when the command is empty or cannot be spawned.
pub fn launch_world(command: &[String], opts: &LaunchOptions) -> Result<WorldOutcome, NetError> {
    let port = match opts.master_port {
        Some(p) => p,
        None => free_port()?,
    };
    let mut guard = WorldGuard::default();
    spawn_world(&mut guard, command, opts, port, 0)?;
    supervise(guard.slots(), opts.timeout, None, opts.tolerate_departures)
}

/// Spawns one generation of the world into `guard`. On any spawn failure
/// the guard's drop (at the caller) reaps whatever did start.
fn spawn_world(
    guard: &mut WorldGuard,
    command: &[String],
    opts: &LaunchOptions,
    port: u16,
    generation: u64,
) -> Result<(), NetError> {
    let Some((program, args)) = command.split_first() else {
        return Err(NetError::Config("empty worker command".to_string()));
    };
    if opts.world == 0 {
        return Err(NetError::Config("world size must be positive".to_string()));
    }
    for rank in 0..opts.world {
        let mut cmd = Command::new(program);
        cmd.args(args)
            .env("RANK", rank.to_string())
            .env("WORLD_SIZE", opts.world.to_string())
            .env("MASTER_ADDR", &opts.master_host)
            .env("MASTER_PORT", port.to_string())
            .env("DEAR_GENERATION", generation.to_string())
            .stdin(std::process::Stdio::null());
        for (k, v) in &opts.env {
            cmd.env(k, v);
        }
        match cmd.spawn() {
            Ok(child) => guard.adopt(child),
            Err(e) => {
                return Err(NetError::io(format!("spawning rank {rank} ({program})"), e));
            }
        }
    }
    Ok(())
}

/// Relaunches worlds until one runs to completion or the restart budget is
/// spent. Each generation gets a fresh rendezvous port (unless
/// `opts.master_port` pins one) and `DEAR_GENERATION` set to the attempt
/// number, so resumed workers find their checkpoints, re-rendezvous, and
/// reject any straggler traffic from the killed incarnation. Failures back
/// off exponentially per [`RestartPolicy`]. `opts.timeout` bounds the
/// *whole* elastic run, restarts included.
///
/// A non-empty `chaos` plan is applied while supervising: event times are
/// measured from the first launch and each event fires at most once, so a
/// finite plan eventually leaves a clean world that can finish (provided
/// the restart budget outlasts the plan's kills).
///
/// # Errors
///
/// Returns the last generation's failure once `policy.max_restarts` is
/// exhausted, [`NetError::Timeout`] if the overall budget expires, or any
/// spawn/config error immediately.
pub fn launch_world_elastic(
    command: &[String],
    opts: &LaunchOptions,
    policy: &RestartPolicy,
    chaos: &ChaosPlan,
) -> Result<ElasticOutcome, NetError> {
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let mut driver = ChaosDriver::new(&chaos.events, start);
    let mut backoff = policy.backoff;
    let mut attempt: u32 = 0;
    loop {
        let port = match opts.master_port {
            Some(p) => p,
            // A fresh port per generation: the old master's listener may
            // linger in TIME_WAIT, and a dead generation must not be
            // dialable by accident.
            None => free_port()?,
        };
        let mut guard = WorldGuard::default();
        spawn_world(&mut guard, command, opts, port, u64::from(attempt))?;
        let remaining = match deadline {
            None => None,
            Some(dl) => {
                let left = dl.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(NetError::Timeout {
                        context: "elastic launch budget exhausted".to_string(),
                        after: opts.timeout.unwrap_or_default(),
                    });
                }
                Some(left)
            }
        };
        let result = supervise(
            guard.slots(),
            remaining,
            Some(&mut driver),
            opts.tolerate_departures,
        );
        // Un-stall survivors before the guard kills them: SIGKILL works on
        // stopped processes, but releasing keeps the bookkeeping simple
        // for the next generation.
        driver.release_all();
        drop(guard);
        match result {
            // A world that resized in place around departures still
            // finished its work — no restart needed.
            Ok(WorldOutcome::AllExitedCleanly | WorldOutcome::SurvivedDepartures { .. }) => {
                return Ok(ElasticOutcome {
                    restarts: attempt,
                    generation: u64::from(attempt),
                })
            }
            Err(e @ NetError::Timeout { .. }) => return Err(e),
            Err(e) => {
                if attempt >= policy.max_restarts {
                    return Err(NetError::Protocol(format!(
                        "world failed and the restart budget ({}) is spent; last failure: {e}",
                        policy.max_restarts
                    )));
                }
                eprintln!(
                    "[dear-launch] generation {attempt} failed ({e}); restarting in {backoff:?}"
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
                attempt += 1;
            }
        }
    }
}

/// Applies a [`ChaosPlan`] against live children: fires each due event at
/// most once (kills via `Child::kill`, stalls via `SIGSTOP`/`SIGCONT`)
/// with times measured from the elastic run's first launch.
struct ChaosDriver<'a> {
    events: &'a [ChaosEvent],
    next: usize,
    start: Instant,
    /// `(resume_at, pid)` for currently stopped victims.
    stalled: Vec<(Instant, u32)>,
}

impl<'a> ChaosDriver<'a> {
    fn new(events: &'a [ChaosEvent], start: Instant) -> Self {
        ChaosDriver {
            events,
            next: 0,
            start,
            stalled: Vec::new(),
        }
    }

    fn poll(&mut self, children: &mut [Option<Child>]) {
        let now = Instant::now();
        self.stalled.retain(|&(resume_at, pid)| {
            if now >= resume_at {
                signal(pid, "CONT");
                false
            } else {
                true
            }
        });
        while let Some(e) = self.events.get(self.next) {
            if now.duration_since(self.start) < e.at {
                break;
            }
            self.next += 1;
            let Some(child) = children.get_mut(e.victim).and_then(Option::as_mut) else {
                continue; // victim already exited — the event is spent
            };
            match e.action {
                ChaosAction::Kill => {
                    let _ = child.kill();
                }
                ChaosAction::Stall(for_how_long) => {
                    signal(child.id(), "STOP");
                    self.stalled.push((now + for_how_long, child.id()));
                }
            }
        }
    }

    /// Resumes every currently stalled victim (pre-teardown).
    fn release_all(&mut self) {
        for (_, pid) in self.stalled.drain(..) {
            signal(pid, "CONT");
        }
    }
}

/// Sends `SIG<sig>` to `pid` via the portable `kill` utility (std has no
/// direct signal API beyond `Child::kill`).
fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .stderr(std::process::Stdio::null())
        .status();
}

/// Polls the children until all exit cleanly, one fails, or the deadline
/// expires; kills the survivors in the latter two cases (a failure is
/// instead logged and tolerated when `tolerate_departures` is set — the
/// in-place resize mode). A chaos driver, when present, gets to inject
/// faults between polls.
fn supervise(
    children: &mut [Option<Child>],
    timeout: Option<Duration>,
    mut chaos: Option<&mut ChaosDriver<'_>>,
    tolerate_departures: bool,
) -> Result<WorldOutcome, NetError> {
    let deadline = timeout.map(|t| Instant::now() + t);
    let mut departed: Vec<usize> = Vec::new();
    let mut finished_cleanly = 0usize;
    loop {
        if let Some(driver) = chaos.as_deref_mut() {
            driver.poll(children);
        }
        let mut all_done = true;
        for rank in 0..children.len() {
            let Some(child) = children[rank].as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    children[rank] = None;
                    finished_cleanly += 1;
                }
                Ok(Some(status)) if tolerate_departures => {
                    // The survivors own recovery: they detect the death at
                    // the collective layer and resize in place. Restart
                    // stays the last resort, applied only if nothing
                    // survives to finish.
                    eprintln!(
                        "[dear-launch] rank {rank} departed ({}); \
                         leaving survivors to resize in place",
                        describe(status)
                    );
                    children[rank] = None;
                    departed.push(rank);
                }
                Ok(Some(status)) => {
                    kill_all(children);
                    return Err(NetError::Protocol(format!(
                        "worker rank {rank} failed: {}",
                        describe(status)
                    )));
                }
                Ok(None) => all_done = false,
                Err(e) => {
                    kill_all(children);
                    return Err(NetError::io(format!("waiting on rank {rank}"), e));
                }
            }
        }
        if all_done {
            if departed.is_empty() {
                return Ok(WorldOutcome::AllExitedCleanly);
            }
            if finished_cleanly == 0 {
                return Err(NetError::Protocol(format!(
                    "every rank departed ({} deaths); nothing survived to resize",
                    departed.len()
                )));
            }
            return Ok(WorldOutcome::SurvivedDepartures { departed });
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                kill_all(children);
                return Err(NetError::Timeout {
                    context: "waiting for the worker world to finish".to_string(),
                    after: timeout.unwrap_or_default(),
                });
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn kill_all(children: &mut [Option<Child>]) {
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        if let Some(mut c) = child.take() {
            let _ = c.wait();
        }
    }
}

fn describe(status: ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "killed by a signal".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_port_is_bindable() {
        let port = free_port().unwrap();
        assert!(port > 0);
        // Typically still free immediately afterwards.
        let rebind = std::net::TcpListener::bind(("127.0.0.1", port));
        assert!(rebind.is_ok(), "probed port was not rebindable");
    }

    #[test]
    fn free_port_does_not_reissue_a_recent_port() {
        // The in-process registry must keep concurrent launches (or
        // back-to-back elastic generations) off each other's ports even
        // though the OS is free to recycle an ephemeral port the moment
        // the probe listener drops.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            assert!(seen.insert(free_port().unwrap()), "port issued twice");
        }
    }

    #[test]
    fn departed_rank_is_tolerated_in_resize_mode() {
        // Rank 1 exits non-zero; with departure tolerance on, the other
        // ranks run to completion and the launch reports the departure
        // instead of failing.
        let cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            "test \"$RANK\" != 1".to_string(),
        ];
        let mut opts = LaunchOptions::new(3);
        opts.tolerate_departures = true;
        let out = launch_world(&cmd, &opts).unwrap();
        assert_eq!(out, WorldOutcome::SurvivedDepartures { departed: vec![1] });
    }

    #[test]
    fn resize_mode_still_fails_when_every_rank_departs() {
        let cmd = vec!["false".to_string()];
        let mut opts = LaunchOptions::new(2);
        opts.tolerate_departures = true;
        let err = launch_world(&cmd, &opts).unwrap_err();
        assert!(err.to_string().contains("nothing survived"), "got {err}");
    }

    #[test]
    fn empty_command_is_rejected() {
        let err = launch_world(&[], &LaunchOptions::new(2)).unwrap_err();
        assert!(matches!(err, NetError::Config(_)));
    }

    #[test]
    fn clean_world_exits_cleanly() {
        let cmd = vec!["true".to_string()];
        let out = launch_world(&cmd, &LaunchOptions::new(3)).unwrap();
        assert_eq!(out, WorldOutcome::AllExitedCleanly);
    }

    #[test]
    fn failing_worker_fails_the_launch() {
        let cmd = vec!["false".to_string()];
        let err = launch_world(&cmd, &LaunchOptions::new(2)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "got {err}");
    }

    #[test]
    fn timeout_kills_a_stuck_world() {
        let cmd = vec!["sleep".to_string(), "30".to_string()];
        let mut opts = LaunchOptions::new(2);
        opts.timeout = Some(Duration::from_millis(200));
        let start = Instant::now();
        let err = launch_world(&cmd, &opts).unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }), "got {err}");
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn guard_drop_kills_what_it_owns() {
        let mut guard = WorldGuard::default();
        for _ in 0..2 {
            guard.adopt(
                Command::new("sleep")
                    .arg("30")
                    .stdin(std::process::Stdio::null())
                    .spawn()
                    .unwrap(),
            );
        }
        let pids = guard.pids();
        assert_eq!(pids.len(), 2);
        drop(guard);
        // `kill -0` probes liveness without sending anything: it must fail
        // for every child once the guard has killed and reaped them.
        for pid in pids {
            let alive = Command::new("kill")
                .args(["-0", &pid.to_string()])
                .stderr(std::process::Stdio::null())
                .status()
                .unwrap()
                .success();
            assert!(!alive, "pid {pid} survived the guard drop");
        }
    }

    #[test]
    fn elastic_launch_retries_until_the_generation_that_succeeds() {
        // Generations 0 and 1 fail, generation 2 exits 0 — the supervisor
        // must consume exactly two restarts.
        let cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            "test \"$DEAR_GENERATION\" -ge 2".to_string(),
        ];
        let mut policy = RestartPolicy::new(4);
        policy.backoff = Duration::from_millis(10);
        let out =
            launch_world_elastic(&cmd, &LaunchOptions::new(2), &policy, &ChaosPlan::default())
                .unwrap();
        assert_eq!(out.restarts, 2);
        assert_eq!(out.generation, 2);
    }

    #[test]
    fn elastic_launch_gives_up_when_the_budget_is_spent() {
        let cmd = vec!["false".to_string()];
        let mut policy = RestartPolicy::new(1);
        policy.backoff = Duration::from_millis(10);
        let err =
            launch_world_elastic(&cmd, &LaunchOptions::new(2), &policy, &ChaosPlan::default())
                .unwrap_err();
        assert!(err.to_string().contains("restart budget"), "got {err}");
    }

    #[test]
    fn chaos_kill_event_takes_down_a_world_early() {
        use crate::chaos::{ChaosAction, ChaosEvent};
        let cmd = vec!["sleep".to_string(), "30".to_string()];
        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at: Duration::from_millis(50),
                victim: 1,
                action: ChaosAction::Kill,
            }],
        };
        let start = Instant::now();
        let err = launch_world_elastic(&cmd, &LaunchOptions::new(2), &RestartPolicy::new(0), &plan)
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "got {err}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "chaos kill did not cut the run short"
        );
    }

    #[test]
    fn chaos_stall_pauses_and_resumes_a_worker() {
        use crate::chaos::{ChaosAction, ChaosEvent};
        // One worker sleeps 0.3 s; a 0.4 s SIGSTOP stall at t≈0 must not
        // fail the run — the worker resumes and exits 0.
        let cmd = vec!["sleep".to_string(), "0.3".to_string()];
        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at: Duration::ZERO,
                victim: 0,
                action: ChaosAction::Stall(Duration::from_millis(400)),
            }],
        };
        let mut opts = LaunchOptions::new(1);
        opts.timeout = Some(Duration::from_secs(20));
        let start = Instant::now();
        let out = launch_world_elastic(&cmd, &opts, &RestartPolicy::new(0), &plan).unwrap();
        assert_eq!(out.restarts, 0);
        assert!(
            start.elapsed() >= Duration::from_millis(300),
            "stall did not delay the worker at all"
        );
    }
}

//! `TcpEndpoint` — the real-socket implementation of
//! [`Transport`], plus the rendezvous protocol that assembles a full mesh
//! of peer connections before step 0.
//!
//! # Topology and rendezvous
//!
//! Every rank owns one TCP listener. Rank 0's listener doubles as the
//! rendezvous master at `MASTER_ADDR`:
//!
//! 1. every worker connects to the master (retrying with exponential
//!    backoff while the master is still starting) and sends `HELLO` with
//!    its own listener address;
//! 2. the master waits for `world − 1` HELLOs, assigns ranks (explicit
//!    ranks are honoured, the rest are filled in arrival order), and
//!    answers each worker with `WELCOME` carrying the full peer table. The
//!    HELLO connection is kept — it *is* the mesh link between that worker
//!    and rank 0;
//! 3. each rank `r` dials ranks `1..r` (first frame: `IDENT r`) and
//!    accepts ranks `r+1..world`, so every pair shares exactly one
//!    connection — connects succeed before the peer calls `accept` thanks
//!    to the listen backlog, so no ordering deadlock exists;
//! 4. every worker sends `READY` to rank 0 once its mesh is complete;
//!    rank 0 answers `GO` to all — the pre-step-0 barrier.
//!
//! # Data path
//!
//! Per peer, the endpoint runs a **writer thread** draining a bounded
//! outbox (so [`Transport::send`] never blocks the comm thread's
//! collectives until `outbox_frames` of backpressure have accumulated) and
//! a **reader thread** demultiplexing incoming frames into that peer's
//! inbox (so [`Transport::recv`] stays ordered per peer). Payload buffers
//! come from a shared pool ([`Transport::take_buffer`] /
//! [`Transport::recycle_buffer`]), so the steady-state hot path is
//! allocation-free on both sides of the socket.
//!
//! Failures never hang: sends and receives carry configurable deadlines
//! surfacing as [`CollectiveError::Timeout`], a dead peer surfaces as
//! [`CollectiveError::Disconnected`], and dropping the endpoint sends
//! shutdown frames, force-closes the sockets, and joins every thread.
//!
//! # Failure detection and world generations
//!
//! When [`NetConfig::heartbeat_interval`] is set, a **monitor thread**
//! queues a heartbeat frame to every peer each interval and watches frame
//! arrival times (any frame counts as liveness, so busy data links need no
//! heartbeats). A peer silent for `heartbeat_miss_budget` consecutive
//! intervals — without having sent a graceful shutdown — is declared dead:
//! the monitor records the verdict and force-closes every socket, so all
//! blocked sends and receives fail fast with [`CollectiveError::Aborted`]
//! instead of each waiting out its own deadline.
//!
//! Every data frame is stamped with the world **generation** (the elastic
//! launcher's restart counter, [`NetConfig::generation`]). The rendezvous
//! rejects joins from a different generation, and the readers reject
//! mismatched data frames with [`CollectiveError::StaleGeneration`] —
//! traffic from a previous incarnation of a restarted world can never
//! corrupt a live collective.

use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dear_collectives::{CollectiveError, Message, Transport, WireBuf};
use dear_core::trace;

use crate::config::{NetConfig, NetError};
use crate::frame::{
    decode_generation, decode_ident, encode_data_body, encode_generation, encode_ident, read_frame,
    split_data_body, write_frame, FrameKind, Hello, Welcome, DATA_BODY_OVERHEAD, MAX_FRAME_BYTES,
};

/// Bytes of frame overhead per wire frame (the 5-byte header).
const FRAME_HEADER_BYTES: u64 = 5;

/// Per-peer traffic counters, bumped lock-free by the reader/writer threads
/// and the send path. Snapshot via [`TcpEndpoint::stats`].
#[derive(Default)]
struct PeerCounters {
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    send_retries: AtomicU64,
}

/// A snapshot of one peer link's traffic from [`TcpEndpoint::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerStats {
    /// The remote rank.
    pub peer: usize,
    /// Wire bytes written to this peer (headers included).
    pub bytes_sent: u64,
    /// Wire bytes read from this peer (headers included).
    pub bytes_recv: u64,
    /// Times a send found the outbox full and had to back off.
    pub send_retries: u64,
}

/// The wire size of a data body carrying `wire_bytes` of encoded payload
/// (generation stamp + dtype tag + element bytes), when it exceeds the
/// frame limit. Byte-denominated: a bf16 payload can carry twice the
/// elements of an f32 payload before hitting the limit.
fn oversize_bytes(wire_bytes: usize) -> Option<u64> {
    let bytes = DATA_BODY_OVERHEAD as u64 + wire_bytes as u64;
    (bytes > MAX_FRAME_BYTES as u64).then_some(bytes)
}

/// Buffers kept in the shared pool; bounds pool memory at roughly
/// `POOL_CAP × largest-segment` bytes (matches `LocalEndpoint`).
const POOL_CAP: usize = 64;

/// Shared reusable wire-byte pool; reader threads take from it for
/// incoming payloads, writer threads and `recycle_buffer` return to it.
#[derive(Default)]
struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    fn take(&self, capacity_bytes: usize) -> Vec<u8> {
        let mut pool = self.bufs.lock().expect("buffer pool poisoned");
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity_bytes);
                buf
            }
            None => Vec::with_capacity(capacity_bytes),
        }
    }

    fn recycle(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.bufs.lock().expect("buffer pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

/// Commands consumed by a peer's writer thread.
enum WriterCmd {
    /// Frame this payload and put it on the wire, then recycle the buffer.
    Data(WireBuf),
    /// Write a liveness probe (the failure detector's periodic frame).
    Heartbeat,
    /// Write a graceful shutdown frame and exit.
    Shutdown,
}

/// Liveness bookkeeping shared by the reader threads, the heartbeat
/// monitor, and the send/recv error paths.
struct Health {
    inner: Mutex<HealthInner>,
}

struct HealthInner {
    /// When each peer was last heard from (any frame). Indexed by rank;
    /// the own-rank slot is unused.
    last_seen: Vec<Instant>,
    /// Peers that sent a graceful shutdown — gone, but not failed; exempt
    /// from death detection.
    departed: Vec<bool>,
    /// Set once by the monitor when a peer misses its heartbeat budget;
    /// the whole endpoint is torn down at that point.
    aborted: Option<usize>,
    /// Set by a reader on a generation mismatch: `(peer, actual)`.
    stale: Option<(usize, u64)>,
}

impl Health {
    fn new(world: usize) -> Self {
        Health {
            inner: Mutex::new(HealthInner {
                last_seen: vec![Instant::now(); world],
                departed: vec![false; world],
                aborted: None,
                stale: None,
            }),
        }
    }

    fn saw(&self, peer: usize) {
        self.inner.lock().expect("health poisoned").last_seen[peer] = Instant::now();
    }

    fn mark_departed(&self, peer: usize) {
        let mut h = self.inner.lock().expect("health poisoned");
        h.departed[peer] = true;
        h.last_seen[peer] = Instant::now();
    }

    fn mark_stale(&self, peer: usize, actual: u64) {
        let mut h = self.inner.lock().expect("health poisoned");
        if h.stale.is_none() {
            h.stale = Some((peer, actual));
        }
    }
}

/// One rank's endpoint of a TCP cluster. See the [module docs](self) for
/// the protocol; see [`crate::tcp_loopback`] for a single-process
/// multi-thread variant used by tests and benches.
pub struct TcpEndpoint {
    rank: usize,
    world: usize,
    generation: u64,
    send_timeout: Duration,
    recv_timeout: Mutex<Option<Duration>>,
    /// `outboxes[p]` feeds peer `p`'s writer thread. `None` at own rank.
    outboxes: Vec<Option<SyncSender<WriterCmd>>>,
    /// `inboxes[p]` is fed by peer `p`'s reader thread. `None` at own rank.
    inboxes: Vec<Option<Mutex<Receiver<WireBuf>>>>,
    pool: Arc<BufferPool>,
    health: Arc<Health>,
    counters: Arc<Vec<PeerCounters>>,
    writers: Vec<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    /// The heartbeat monitor: a stop channel plus its join handle.
    monitor: Option<(mpsc::Sender<()>, JoinHandle<()>)>,
    /// Stream clones used by `Drop` to force blocked readers out.
    peer_streams: Vec<TcpStream>,
}

impl fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

impl TcpEndpoint {
    /// Joins (or, for rank 0, hosts) the rendezvous described in the
    /// [module docs](self) and returns a ready endpoint: all `world − 1`
    /// peer connections established and the step-0 barrier passed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when binding, connecting (after retries), or
    /// the handshake fails or times out.
    pub fn connect(cfg: &NetConfig) -> Result<TcpEndpoint, NetError> {
        Self::connect_inner(cfg, None)
    }

    /// [`TcpEndpoint::connect`] with a pre-bound master listener — lets a
    /// harness bind port 0 first and hand workers the resolved address.
    ///
    /// # Errors
    ///
    /// As [`TcpEndpoint::connect`]; also if `cfg.rank` is not `Some(0)`.
    pub fn connect_with_listener(
        cfg: &NetConfig,
        listener: TcpListener,
    ) -> Result<TcpEndpoint, NetError> {
        if cfg.rank != Some(0) {
            return Err(NetError::Config(
                "a pre-bound master listener requires rank 0".to_string(),
            ));
        }
        Self::connect_inner(cfg, Some(listener))
    }

    fn connect_inner(cfg: &NetConfig, pre: Option<TcpListener>) -> Result<TcpEndpoint, NetError> {
        if cfg.world == 0 {
            return Err(NetError::Config("world size must be positive".to_string()));
        }
        if cfg.world == 1 {
            return Ok(TcpEndpoint {
                rank: 0,
                world: 1,
                generation: cfg.generation,
                send_timeout: cfg.send_timeout,
                recv_timeout: Mutex::new(cfg.recv_timeout),
                outboxes: vec![None],
                inboxes: vec![None],
                pool: Arc::new(BufferPool::default()),
                health: Arc::new(Health::new(1)),
                counters: Arc::new(vec![PeerCounters::default()]),
                writers: Vec::new(),
                readers: Vec::new(),
                monitor: None,
                peer_streams: Vec::new(),
            });
        }
        let t0 = Instant::now();
        let (rank, streams) = match cfg.rank {
            Some(0) => rendezvous_master(cfg, pre)?,
            _ => rendezvous_worker(cfg)?,
        };
        trace::record(
            &format!("net.r{rank}/net"),
            trace::TaskKind::Other,
            || format!("rendezvous[g{}]", cfg.generation),
            t0,
        );
        Self::from_mesh(rank, cfg, streams)
    }

    /// Spawns the per-peer reader/writer threads over an established mesh,
    /// plus the heartbeat monitor when failure detection is enabled.
    fn from_mesh(
        rank: usize,
        cfg: &NetConfig,
        streams: Vec<Option<TcpStream>>,
    ) -> Result<TcpEndpoint, NetError> {
        let world = cfg.world;
        let pool = Arc::new(BufferPool::default());
        let health = Arc::new(Health::new(world));
        let counters: Arc<Vec<PeerCounters>> =
            Arc::new((0..world).map(|_| PeerCounters::default()).collect());
        let mut outboxes = Vec::with_capacity(world);
        let mut inboxes = Vec::with_capacity(world);
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        let mut peer_streams = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else {
                if peer != rank {
                    return Err(NetError::Protocol(format!(
                        "rendezvous left no connection to rank {peer}"
                    )));
                }
                outboxes.push(None);
                inboxes.push(None);
                continue;
            };
            stream
                .set_nodelay(true)
                .map_err(|e| NetError::io(format!("setting TCP_NODELAY for rank {peer}"), e))?;
            // Handshake deadlines no longer apply: readers block until
            // woken (Drop force-closes the socket), writers are bounded by
            // the send deadline.
            stream
                .set_read_timeout(None)
                .map_err(|e| NetError::io(format!("clearing read deadline for rank {peer}"), e))?;
            let wstream = stream
                .try_clone()
                .map_err(|e| NetError::io(format!("cloning stream for rank {peer}"), e))?;
            wstream
                .set_write_timeout(Some(cfg.send_timeout))
                .map_err(|e| NetError::io(format!("setting write deadline for rank {peer}"), e))?;
            let shutdown_handle = stream
                .try_clone()
                .map_err(|e| NetError::io(format!("cloning stream for rank {peer}"), e))?;
            let (otx, orx) = mpsc::sync_channel(cfg.outbox_frames);
            let (itx, irx) = mpsc::channel();
            let wpool = Arc::clone(&pool);
            let wcounters = Arc::clone(&counters);
            let generation = cfg.generation;
            writers.push(std::thread::spawn(move || {
                writer_loop(wstream, generation, orx, &wpool, &wcounters[peer])
            }));
            let rpool = Arc::clone(&pool);
            let rhealth = Arc::clone(&health);
            let rcounters = Arc::clone(&counters);
            readers.push(std::thread::spawn(move || {
                reader_loop(
                    stream,
                    peer,
                    generation,
                    itx,
                    &rpool,
                    &rhealth,
                    &rcounters[peer],
                )
            }));
            outboxes.push(Some(otx));
            inboxes.push(Some(Mutex::new(irx)));
            peer_streams.push(shutdown_handle);
        }
        let monitor = match cfg.heartbeat_interval {
            Some(interval) if world > 1 => {
                let (stop_tx, stop_rx) = mpsc::channel();
                let mhealth = Arc::clone(&health);
                let mouts: Vec<Option<SyncSender<WriterCmd>>> = outboxes.clone();
                let msockets: Vec<TcpStream> = peer_streams
                    .iter()
                    .map(|s| {
                        s.try_clone()
                            .map_err(|e| NetError::io("cloning stream for the monitor", e))
                    })
                    .collect::<Result<_, _>>()?;
                let budget = cfg.heartbeat_miss_budget.max(1);
                let handle = std::thread::spawn(move || {
                    heartbeat_monitor(interval, budget, &mhealth, &mouts, &msockets, &stop_rx)
                });
                Some((stop_tx, handle))
            }
            _ => None,
        };
        Ok(TcpEndpoint {
            rank,
            world,
            generation: cfg.generation,
            send_timeout: cfg.send_timeout,
            recv_timeout: Mutex::new(cfg.recv_timeout),
            outboxes,
            inboxes,
            pool,
            health,
            counters,
            writers,
            readers,
            monitor,
            peer_streams,
        })
    }

    /// Per-peer wire traffic so far, in rank order (own rank omitted):
    /// bytes written, bytes read, and send-side backoff retries. Cheap —
    /// relaxed atomic reads — so callers may poll it mid-run.
    #[must_use]
    pub fn stats(&self) -> Vec<PeerStats> {
        self.counters
            .iter()
            .enumerate()
            .filter(|&(peer, _)| peer != self.rank)
            .map(|(peer, c)| PeerStats {
                peer,
                bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
                bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
                send_retries: c.send_retries.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The world generation this endpoint was created in (the elastic
    /// launcher's restart counter; 0 for a first launch).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Maps a low-level channel failure on `peer` to the richer verdict
    /// the health state holds, if any: a stale-generation frame from that
    /// peer, or an endpoint-wide abort by the failure detector.
    fn failure_verdict(&self, peer: usize) -> Option<CollectiveError> {
        let h = self.health.inner.lock().expect("health poisoned");
        if let Some((p, actual)) = h.stale {
            if p == peer {
                return Some(CollectiveError::StaleGeneration {
                    peer,
                    expected: self.generation,
                    actual,
                });
            }
        }
        h.aborted.map(|p| CollectiveError::Aborted { peer: p })
    }
}

/// The failure-detector thread: each interval, queue a heartbeat to every
/// live peer and check arrival times. A peer silent for `budget` intervals
/// (and not gracefully departed) is declared dead — the verdict is
/// recorded and every socket force-closed so all blocked operations
/// surface [`CollectiveError::Aborted`] immediately.
fn heartbeat_monitor(
    interval: Duration,
    budget: u32,
    health: &Health,
    outboxes: &[Option<SyncSender<WriterCmd>>],
    sockets: &[TcpStream],
    stop: &Receiver<()>,
) {
    let allowance = interval * budget;
    loop {
        match stop.recv_timeout(interval) {
            Err(mpsc::RecvTimeoutError::Timeout) => (),
            // Stop requested or the endpoint is gone either way.
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        // Probe: a full outbox means data is flowing, which is liveness
        // enough on its own — skip rather than block the monitor.
        let mut probes = 0usize;
        for tx in outboxes.iter().flatten() {
            if tx.try_send(WriterCmd::Heartbeat).is_ok() {
                probes += 1;
            }
        }
        trace::add_counter("net.heartbeat_probes", probes as f64);
        let now = Instant::now();
        let verdict = {
            let mut h = health.inner.lock().expect("health poisoned");
            if h.aborted.is_some() {
                return;
            }
            let dead = h
                .last_seen
                .iter()
                .enumerate()
                .find(|&(p, &seen)| {
                    !h.departed[p]
                        && outboxes.get(p).is_some_and(Option::is_some)
                        && now.duration_since(seen) > allowance
                })
                .map(|(p, _)| p);
            if let Some(p) = dead {
                h.aborted = Some(p);
            }
            dead
        };
        if verdict.is_some() {
            // Tear the endpoint down: closing the sockets pops readers out
            // of blocked reads and fails writer writes, so every pending
            // send/recv resolves now instead of at its own deadline.
            for s in sockets {
                let _ = s.shutdown(Shutdown::Both);
            }
            return;
        }
    }
}

/// Writer thread: frames and flushes each queued payload, recycling the
/// buffer. Exits on a `Shutdown` command (writing a graceful shutdown
/// frame), on channel close (endpoint dropped), or on a write error —
/// writes carry a socket deadline, so a wedged peer cannot block forever.
fn writer_loop(
    stream: TcpStream,
    generation: u64,
    orx: Receiver<WriterCmd>,
    pool: &BufferPool,
    counters: &PeerCounters,
) {
    let mut w = BufWriter::with_capacity(64 * 1024, stream);
    let mut bytes = Vec::new();
    while let Ok(cmd) = orx.recv() {
        match cmd {
            WriterCmd::Data(payload) => {
                encode_data_body(generation, &payload, &mut bytes);
                let ok = write_frame(&mut w, FrameKind::Data, &bytes).is_ok();
                pool.recycle(payload.into_bytes());
                if !ok || w.flush().is_err() {
                    return; // dropping orx signals Disconnected to senders
                }
                counters
                    .bytes_sent
                    .fetch_add(FRAME_HEADER_BYTES + bytes.len() as u64, Ordering::Relaxed);
            }
            WriterCmd::Heartbeat => {
                if write_frame(&mut w, FrameKind::Heartbeat, &encode_generation(generation))
                    .is_err()
                    || w.flush().is_err()
                {
                    return;
                }
                counters
                    .bytes_sent
                    .fetch_add(FRAME_HEADER_BYTES + 8, Ordering::Relaxed);
            }
            WriterCmd::Shutdown => {
                let _ = write_frame(&mut w, FrameKind::Shutdown, &[]);
                let _ = w.flush();
                return;
            }
        }
    }
}

/// Reader thread: demultiplexes incoming frames — data payloads go to the
/// peer's inbox (in pooled buffers), heartbeats only refresh liveness, a
/// shutdown frame or any error ends the stream. Every frame updates the
/// peer's last-seen time; a frame stamped with a foreign generation
/// records a stale verdict and ends the stream (surfacing as
/// [`CollectiveError::StaleGeneration`] on the receive side). Dropping the
/// inbox sender is what turns a dead peer into
/// [`CollectiveError::Disconnected`].
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    stream: TcpStream,
    peer: usize,
    generation: u64,
    itx: mpsc::Sender<WireBuf>,
    pool: &BufferPool,
    health: &Health,
    counters: &PeerCounters,
) {
    let mut r = BufReader::with_capacity(64 * 1024, stream);
    let mut body = Vec::new();
    loop {
        let frame = read_frame(&mut r, &mut body);
        if frame.is_ok() {
            counters
                .bytes_recv
                .fetch_add(FRAME_HEADER_BYTES + body.len() as u64, Ordering::Relaxed);
        }
        match frame {
            Ok(FrameKind::Data) => {
                health.saw(peer);
                let Ok((stamp, dtype, raw)) = split_data_body(&body) else {
                    return;
                };
                if stamp != generation {
                    health.mark_stale(peer, stamp);
                    return;
                }
                let mut buf = pool.take(raw.len());
                buf.extend_from_slice(raw);
                // The payload is self-describing: decode by the frame's own
                // dtype tag. A byte count that doesn't divide into whole
                // elements is stream corruption — end the stream.
                let Ok(payload) = WireBuf::from_raw(dtype, buf) else {
                    return;
                };
                if itx.send(payload).is_err() {
                    return;
                }
            }
            Ok(FrameKind::Heartbeat) => {
                health.saw(peer);
                match decode_generation(&body) {
                    Ok(stamp) if stamp == generation => (),
                    Ok(stamp) => {
                        health.mark_stale(peer, stamp);
                        return;
                    }
                    Err(_) => return,
                }
            }
            Ok(FrameKind::Shutdown) => {
                health.mark_departed(peer);
                return;
            }
            // Unexpected control frame, EOF, reset, or forced local close:
            // in every case the stream is over.
            Ok(_) | Err(_) => return,
        }
    }
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CollectiveError> {
        self.check_peer(to)?;
        if let Some(bytes) = oversize_bytes(msg.wire_bytes()) {
            // The frame header's length field is a u32; letting this
            // through would truncate on the wire and desynchronize the
            // peer's stream.
            return Err(CollectiveError::Oversize {
                peer: to,
                bytes,
                max: MAX_FRAME_BYTES as u64,
            });
        }
        let tx = self.outboxes[to].as_ref().expect("validated peer");
        // A fabric-local deliver-at stamp must never reach the wire; this
        // surfaces the composition bug as a typed error (see
        // `Message::into_wire_payload`).
        let mut cmd = WriterCmd::Data(msg.into_wire_payload()?);
        let deadline = Instant::now() + self.send_timeout;
        loop {
            match tx.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    self.counters[to]
                        .send_retries
                        .fetch_add(1, Ordering::Relaxed);
                    if Instant::now() >= deadline {
                        return Err(CollectiveError::Timeout {
                            peer: to,
                            millis: self.send_timeout.as_millis() as u64,
                        });
                    }
                    cmd = c;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(self
                        .failure_verdict(to)
                        .unwrap_or(CollectiveError::Disconnected { peer: to }))
                }
            }
        }
    }

    fn recv(&self, from: usize) -> Result<Message, CollectiveError> {
        self.check_peer(from)?;
        let rx = self.inboxes[from]
            .as_ref()
            .expect("validated peer")
            .lock()
            .expect("inbox poisoned");
        let timeout = *self.recv_timeout.lock().expect("recv timeout poisoned");
        let payload = match timeout {
            None => rx.recv().map_err(|_| {
                self.failure_verdict(from)
                    .unwrap_or(CollectiveError::Disconnected { peer: from })
            })?,
            Some(dl) => rx.recv_timeout(dl).map_err(|e| {
                let plain = match e {
                    mpsc::RecvTimeoutError::Timeout => CollectiveError::Timeout {
                        peer: from,
                        millis: dl.as_millis() as u64,
                    },
                    mpsc::RecvTimeoutError::Disconnected => {
                        CollectiveError::Disconnected { peer: from }
                    }
                };
                self.failure_verdict(from).unwrap_or(plain)
            })?,
        };
        Ok(Message::new(payload))
    }

    fn set_recv_timeout(&self, timeout: Option<Duration>) -> bool {
        *self.recv_timeout.lock().expect("recv timeout poisoned") = timeout;
        true
    }

    fn take_buffer(&self, capacity_bytes: usize) -> Vec<u8> {
        self.pool.take(capacity_bytes)
    }

    fn recycle_buffer(&self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Stop the heartbeat monitor first: it holds socket clones and
        // must not race the orderly writer drain below by force-closing
        // sockets over a false death verdict mid-teardown.
        if let Some((stop_tx, handle)) = self.monitor.take() {
            let _ = stop_tx.send(());
            let _ = handle.join();
        }
        // Queue a graceful shutdown frame where the outbox has room, then
        // close every outbox: writers drain all queued data, write the
        // shutdown frame, and exit (their write deadline bounds this even
        // against a wedged peer).
        for tx in self.outboxes.iter_mut() {
            if let Some(tx) = tx.take() {
                let _ = tx.try_send(WriterCmd::Shutdown);
            }
        }
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
        // Force readers out of blocking reads. All frames we were owed have
        // been consumed by completed collectives, so nothing of value is
        // discarded.
        for s in self.peer_streams.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
        // With threads joined the counters are final: fold them into the
        // trace recorder so per-peer traffic rides along in the dump.
        if trace::enabled() {
            let r = self.rank;
            for st in self.stats() {
                let p = st.peer;
                trace::add_counter(&format!("net.r{r}.p{p}.bytes_sent"), st.bytes_sent as f64);
                trace::add_counter(&format!("net.r{r}.p{p}.bytes_recv"), st.bytes_recv as f64);
                trace::add_counter(
                    &format!("net.r{r}.p{p}.send_retries"),
                    st.send_retries as f64,
                );
            }
        }
    }
}

/// Dials `addr`, retrying with exponential backoff (connection refused just
/// means the peer's listener isn't up yet) until `cfg.connect_timeout`.
fn connect_with_retry(addr: &str, cfg: &NetConfig) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = NetConfig::CONNECT_BACKOFF_MIN;
    loop {
        let attempt = (|| -> std::io::Result<TcpStream> {
            let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
            })?;
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_secs(2))
                .max(Duration::from_millis(1));
            TcpStream::connect_timeout(&sockaddr, remaining)
        })();
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(NetError::Timeout {
                        context: format!("connecting to {addr} (last error: {e})"),
                        after: cfg.connect_timeout,
                    });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(NetConfig::CONNECT_BACKOFF_MAX);
            }
        }
    }
}

/// Accepts one connection with a deadline (std listeners have no accept
/// timeout, so this polls in non-blocking mode).
fn accept_deadline(
    listener: &TcpListener,
    deadline: Instant,
    what: &str,
) -> Result<(TcpStream, std::net::SocketAddr), NetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::io("setting listener non-blocking", e))?;
    loop {
        match listener.accept() {
            Ok((s, peer)) => {
                s.set_nonblocking(false)
                    .map_err(|e| NetError::io("restoring blocking mode", e))?;
                return Ok((s, peer));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout {
                        context: format!("waiting to accept {what}"),
                        after: Duration::ZERO,
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(NetError::io(format!("accepting {what}"), e)),
        }
    }
}

/// Applies the handshake socket deadlines to a rendezvous-phase stream.
fn set_handshake_deadlines(s: &TcpStream, cfg: &NetConfig) -> Result<(), NetError> {
    s.set_read_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("setting handshake read deadline", e))?;
    s.set_write_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("setting handshake write deadline", e))
}

/// Reads one frame expecting `want`, surfacing anything else as a protocol
/// violation.
fn expect_frame(
    s: &mut TcpStream,
    want: FrameKind,
    body: &mut Vec<u8>,
    who: &str,
) -> Result<(), NetError> {
    let got = read_frame(s, body).map_err(|e| NetError::io(format!("reading from {who}"), e))?;
    if got != want {
        return Err(NetError::Protocol(format!(
            "expected {want:?} from {who}, got {got:?}"
        )));
    }
    Ok(())
}

/// Rank 0's side of the rendezvous: collect HELLOs, assign ranks, publish
/// the peer table, then run the READY/GO barrier. The HELLO connections
/// become rank 0's mesh links.
fn rendezvous_master(
    cfg: &NetConfig,
    pre: Option<TcpListener>,
) -> Result<(usize, Vec<Option<TcpStream>>), NetError> {
    let world = cfg.world;
    let listener = match pre {
        Some(l) => l,
        None => TcpListener::bind(&cfg.master_addr)
            .map_err(|e| NetError::io(format!("binding master listener {}", cfg.master_addr), e))?,
    };
    let deadline = Instant::now() + cfg.handshake_timeout;
    let mut body = Vec::new();
    let mut pending: Vec<(TcpStream, Hello, IpAddr)> = Vec::with_capacity(world - 1);
    while pending.len() < world - 1 {
        let (mut s, peer) = accept_deadline(&listener, deadline, "a worker HELLO")?;
        set_handshake_deadlines(&s, cfg)?;
        expect_frame(&mut s, FrameKind::Hello, &mut body, "worker")?;
        let hello = Hello::decode(&body).map_err(|e| NetError::io("decoding HELLO", e))?;
        if hello.generation != cfg.generation {
            // A straggler from a previous incarnation of a restarted
            // world: refuse it and keep waiting for current-generation
            // members (the straggler sees its connection die).
            drop(s);
            continue;
        }
        pending.push((s, hello, peer.ip()));
    }
    // Assign ranks: explicit requests first, then fill in arrival order.
    let mut taken = vec![false; world];
    taken[0] = true;
    let mut assigned: Vec<Option<usize>> = vec![None; pending.len()];
    for (i, (_, hello, _)) in pending.iter().enumerate() {
        if hello.rank != u32::MAX {
            let r = hello.rank as usize;
            if r == 0 || r >= world || taken[r] {
                return Err(NetError::Protocol(format!(
                    "worker requested rank {r}, which is invalid or already taken (world {world})"
                )));
            }
            taken[r] = true;
            assigned[i] = Some(r);
        }
    }
    for slot in assigned.iter_mut().filter(|s| s.is_none()) {
        let r = taken.iter().position(|t| !t).expect("a free rank exists");
        taken[r] = true;
        *slot = Some(r);
    }
    // Build the dialable peer table.
    let mut addrs = vec![String::new(); world];
    addrs[0] = cfg.master_addr.clone();
    for (i, (_, hello, seen_ip)) in pending.iter().enumerate() {
        let rank = assigned[i].expect("all slots assigned");
        let host = if hello.host.is_empty() || hello.host == "0.0.0.0" {
            seen_ip.to_string()
        } else {
            hello.host.clone()
        };
        addrs[rank] = format!("{host}:{}", hello.port);
    }
    // WELCOME everyone; the HELLO connections become mesh links to rank 0.
    let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    for ((mut s, _, _), rank) in pending.into_iter().zip(assigned) {
        let rank = rank.expect("all slots assigned");
        let welcome = Welcome {
            rank: rank as u32,
            world: world as u32,
            generation: cfg.generation,
            addrs: addrs.clone(),
        };
        write_frame(&mut s, FrameKind::Welcome, &welcome.encode())
            .map_err(|e| NetError::io(format!("sending WELCOME to rank {rank}"), e))?;
        streams[rank] = Some(s);
    }
    // Barrier: one READY per worker, then GO to all.
    for (r, slot) in streams.iter_mut().enumerate().skip(1) {
        let s = slot.as_mut().expect("welcomed worker");
        expect_frame(s, FrameKind::Ready, &mut body, &format!("rank {r}"))?;
    }
    for (r, slot) in streams.iter_mut().enumerate().skip(1) {
        let s = slot.as_mut().expect("welcomed worker");
        write_frame(s, FrameKind::Go, &[])
            .map_err(|e| NetError::io(format!("sending GO to rank {r}"), e))?;
    }
    Ok((0, streams))
}

/// A worker's side of the rendezvous: HELLO the master, learn rank and
/// peer table, dial lower ranks, accept higher ranks, then barrier.
fn rendezvous_worker(cfg: &NetConfig) -> Result<(usize, Vec<Option<TcpStream>>), NetError> {
    let world = cfg.world;
    let listener = TcpListener::bind((cfg.listen_host.as_str(), 0))
        .map_err(|e| NetError::io(format!("binding worker listener on {}", cfg.listen_host), e))?;
    let port = listener
        .local_addr()
        .map_err(|e| NetError::io("reading listener address", e))?
        .port();
    let mut master = connect_with_retry(&cfg.master_addr, cfg)?;
    set_handshake_deadlines(&master, cfg)?;
    let hello = Hello {
        rank: cfg.rank.map_or(u32::MAX, |r| r as u32),
        port,
        generation: cfg.generation,
        host: if cfg.listen_host == "0.0.0.0" {
            String::new()
        } else {
            cfg.listen_host.clone()
        },
    };
    write_frame(&mut master, FrameKind::Hello, &hello.encode())
        .map_err(|e| NetError::io("sending HELLO", e))?;
    let mut body = Vec::new();
    expect_frame(&mut master, FrameKind::Welcome, &mut body, "master")?;
    let welcome = Welcome::decode(&body).map_err(|e| NetError::io("decoding WELCOME", e))?;
    if welcome.world as usize != world {
        return Err(NetError::Protocol(format!(
            "master believes world is {}, this worker was configured for {world}",
            welcome.world
        )));
    }
    if welcome.generation != cfg.generation {
        return Err(NetError::Protocol(format!(
            "master is running generation {}, this worker was launched for generation {}",
            welcome.generation, cfg.generation
        )));
    }
    let rank = welcome.rank as usize;
    if rank == 0 || rank >= world || cfg.rank.is_some_and(|r| r != rank) {
        return Err(NetError::Protocol(format!(
            "master assigned rank {rank}, configured rank {:?} (world {world})",
            cfg.rank
        )));
    }
    let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    streams[0] = Some(master);
    // Dial every lower non-zero rank, identifying ourselves.
    for (peer, addr) in welcome.addrs.iter().enumerate().take(rank).skip(1) {
        let mut s = connect_with_retry(addr, cfg)?;
        set_handshake_deadlines(&s, cfg)?;
        write_frame(&mut s, FrameKind::Ident, &encode_ident(rank as u32))
            .map_err(|e| NetError::io(format!("sending IDENT to rank {peer}"), e))?;
        streams[peer] = Some(s);
    }
    // Accept every higher rank.
    let deadline = Instant::now() + cfg.handshake_timeout;
    for _ in rank + 1..world {
        let (mut s, _) = accept_deadline(&listener, deadline, "a peer IDENT")?;
        set_handshake_deadlines(&s, cfg)?;
        expect_frame(&mut s, FrameKind::Ident, &mut body, "peer")?;
        let peer = decode_ident(&body).map_err(|e| NetError::io("decoding IDENT", e))? as usize;
        if peer <= rank || peer >= world {
            return Err(NetError::Protocol(format!(
                "rank {peer} dialled rank {rank}; only higher ranks dial lower ones"
            )));
        }
        if streams[peer].is_some() {
            return Err(NetError::Protocol(format!("rank {peer} dialled twice")));
        }
        streams[peer] = Some(s);
    }
    // Mesh complete: barrier through rank 0.
    let master = streams[0].as_mut().expect("master connection");
    write_frame(master, FrameKind::Ready, &[]).map_err(|e| NetError::io("sending READY", e))?;
    expect_frame(master, FrameKind::Go, &mut body, "master")?;
    Ok((rank, streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::tcp_loopback;

    #[test]
    fn world_of_one_needs_no_sockets() {
        let cfg = NetConfig::new(1, 0, "127.0.0.1:0");
        let ep = TcpEndpoint::connect(&cfg).unwrap();
        assert_eq!((ep.rank(), ep.world_size()), (0, 1));
        assert!(matches!(
            ep.send(0, vec![].into()).unwrap_err(),
            CollectiveError::InvalidRank { .. }
        ));
    }

    #[test]
    fn send_recv_roundtrip_preserves_order_and_bits() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                a.send(1, vec![1.0, f32::NAN, -0.0].into()).unwrap();
                a.send(1, vec![2.0].into()).unwrap();
            });
            s.spawn(|| {
                let first = b.recv(0).unwrap().into_payload().to_f32_vec();
                assert_eq!(first.len(), 3);
                assert_eq!(first[0].to_bits(), 1.0f32.to_bits());
                assert!(first[1].is_nan());
                assert_eq!(first[2].to_bits(), (-0.0f32).to_bits());
                assert_eq!(b.recv(0).unwrap(), vec![2.0]);
            });
        });
    }

    #[test]
    fn recv_timeout_surfaces_instead_of_hanging() {
        let eps = tcp_loopback(2).unwrap();
        assert!(eps[0].set_recv_timeout(Some(Duration::from_millis(50))));
        let err = eps[0].recv(1).unwrap_err();
        assert!(matches!(err, CollectiveError::Timeout { peer: 1, .. }));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnected() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        drop(eps); // rank 0 shuts down gracefully
        b.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = b.recv(0).unwrap_err();
        assert_eq!(err, CollectiveError::Disconnected { peer: 0 });
        // Sending to the departed peer eventually fails too (the writer
        // thread may still accept a queued frame before noticing).
        let mut saw_error = false;
        for _ in 0..200 {
            if b.send(0, vec![1.0].into()).is_err() {
                saw_error = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_error, "send to a dead peer never failed");
    }

    #[test]
    fn pool_reuses_buffers_across_recv() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![5.0; 8].into()).unwrap();
        let msg = b.recv(0).unwrap();
        let buf = msg.into_payload().into_bytes();
        let cap = buf.capacity();
        b.recycle_buffer(buf);
        let again = b.take_buffer(4);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "pool should hand back the buffer");
    }

    #[test]
    fn narrow_payloads_keep_their_dtype_across_the_socket() {
        use dear_collectives::DType;
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let elems = [1.0f32, -2.5, 0.5, 1024.0];
        a.send(1, Message::new(WireBuf::encode(&elems, DType::Bf16)))
            .unwrap();
        let payload = b.recv(0).unwrap().into_payload();
        assert_eq!(payload.dtype(), DType::Bf16);
        assert_eq!(payload.num_bytes(), 8, "half the f32 wire bytes");
        assert_eq!(payload.to_f32_vec(), elems, "bf16-exact values roundtrip");
    }

    #[test]
    fn stamped_message_is_rejected_at_the_wire_boundary() {
        let eps = tcp_loopback(2).unwrap();
        let msg = Message::from(vec![1.0]).with_deliver_at(Instant::now());
        let err = eps[0].send(1, msg).unwrap_err();
        assert_eq!(err, CollectiveError::LocalStampOnWire);
    }

    #[test]
    fn oversize_send_is_rejected_before_framing() {
        // Boundary arithmetic on the helper (a real boundary payload would
        // be a 1 GiB allocation): the stamp and dtype tag's 9 bytes count
        // against the frame limit, so the largest sendable payload is
        // MAX_FRAME_BYTES − 9 wire bytes.
        let fits = MAX_FRAME_BYTES - DATA_BODY_OVERHEAD;
        assert_eq!(oversize_bytes(fits), None);
        assert_eq!(
            oversize_bytes(fits + 1),
            Some(MAX_FRAME_BYTES as u64 + 1),
            "one byte past the boundary must be flagged"
        );
    }

    #[test]
    fn stats_count_wire_bytes_both_ways() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![1.0, 2.0].into()).unwrap();
        let msg = b.recv(0).unwrap();
        assert_eq!(msg.len(), 2);
        // One data frame: 5-byte header + 9-byte stamp/dtype + 2 × 4 payload.
        let expect = FRAME_HEADER_BYTES + DATA_BODY_OVERHEAD as u64 + 8;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let sent = a.stats().iter().map(|s| s.bytes_sent).sum::<u64>();
            let recv = b.stats().iter().map(|s| s.bytes_recv).sum::<u64>();
            if sent >= expect && recv >= expect {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "counters never reached {expect}: sent={sent} recv={recv}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(a.stats()[0].peer, 1);
        assert_eq!(b.stats()[0].peer, 0);
    }

    #[test]
    fn explicit_rank_requests_are_honoured() {
        let eps = tcp_loopback(4).unwrap();
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i);
            assert_eq!(ep.world_size(), 4);
        }
    }

    /// A connected socket pair: `(accepted side, dialling side)`.
    fn raw_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    /// A rank-0, world-2 endpoint whose single peer link is `stream` —
    /// lets tests drive the far side with raw frames.
    fn endpoint_over(stream: TcpStream, cfg: &NetConfig) -> TcpEndpoint {
        TcpEndpoint::from_mesh(0, cfg, vec![None, Some(stream)]).unwrap()
    }

    #[test]
    fn silent_peer_is_declared_dead_and_aborts_the_endpoint() {
        let (ours, _theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = Some(Duration::from_millis(30));
        cfg.heartbeat_miss_budget = 3;
        let ep = endpoint_over(ours, &cfg);
        // The peer holds its socket open but never sends a byte: well
        // before this 5 s recv deadline, the monitor must declare it dead
        // and fail the recv with Aborted (not Timeout).
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let start = Instant::now();
        let err = ep.recv(1).unwrap_err();
        assert_eq!(err, CollectiveError::Aborted { peer: 1 });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "abort took {:?}, detector did not fire",
            start.elapsed()
        );
        // Sends fail fast with the same verdict once the teardown lands.
        let mut saw_abort = false;
        for _ in 0..200 {
            if let Err(e) = ep.send(1, vec![1.0].into()) {
                assert_eq!(e, CollectiveError::Aborted { peer: 1 });
                saw_abort = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_abort, "send to a dead peer never surfaced the abort");
    }

    #[test]
    fn heartbeats_keep_an_idle_peer_alive_until_it_departs_gracefully() {
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = Some(Duration::from_millis(30));
        cfg.heartbeat_miss_budget = 3;
        let ep = endpoint_over(ours, &cfg);
        let pulse = std::thread::spawn(move || {
            let mut s = theirs;
            // Idle for data but alive: heartbeats alone must hold off the
            // detector for far longer than the 90 ms miss allowance.
            for _ in 0..15 {
                write_frame(&mut s, FrameKind::Heartbeat, &encode_generation(0)).unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
            write_frame(&mut s, FrameKind::Shutdown, &[]).unwrap();
        });
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = ep.recv(1).unwrap_err();
        // Disconnected, not Aborted: a graceful departure is not a failure.
        assert_eq!(err, CollectiveError::Disconnected { peer: 1 });
        pulse.join().unwrap();
    }

    #[test]
    fn stale_generation_frames_are_rejected_on_the_data_path() {
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.generation = 5;
        cfg.heartbeat_interval = None;
        let ep = endpoint_over(ours, &cfg);
        let mut s = theirs;
        let mut body = Vec::new();
        encode_data_body(4, &WireBuf::from_f32(&[1.0, 2.0]), &mut body);
        write_frame(&mut s, FrameKind::Data, &body).unwrap();
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = ep.recv(1).unwrap_err();
        assert_eq!(
            err,
            CollectiveError::StaleGeneration {
                peer: 1,
                expected: 5,
                actual: 4
            }
        );
    }

    #[test]
    fn rendezvous_rejects_a_worker_from_another_generation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut mcfg = NetConfig::new(2, 0, addr.clone());
        mcfg.generation = 1;
        mcfg.handshake_timeout = Duration::from_millis(400);
        let master =
            std::thread::spawn(move || TcpEndpoint::connect_with_listener(&mcfg, listener));
        let mut wcfg = NetConfig::new(2, 1, addr);
        wcfg.generation = 0;
        wcfg.handshake_timeout = Duration::from_secs(2);
        // The master refuses the stale HELLO (dropping the connection) and
        // then times out with nobody left to welcome; the worker sees its
        // rendezvous link die instead of a WELCOME.
        assert!(TcpEndpoint::connect(&wcfg).is_err());
        assert!(master.join().unwrap().is_err());
    }

    #[test]
    fn connect_retry_times_out_against_nobody() {
        let mut cfg = NetConfig::new(2, 1, "127.0.0.1:9"); // discard port
        cfg.connect_timeout = Duration::from_millis(100);
        let err = TcpEndpoint::connect(&cfg).unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout { .. } | NetError::Io { .. }
        ));
    }
}

//! `TcpEndpoint` — the real-socket implementation of
//! [`Transport`], plus the rendezvous protocol that assembles a full mesh
//! of peer connections before step 0.
//!
//! # Topology and rendezvous
//!
//! Every rank owns one TCP listener. Rank 0's listener doubles as the
//! rendezvous master at `MASTER_ADDR`:
//!
//! 1. every worker connects to the master (retrying with exponential
//!    backoff while the master is still starting) and sends `HELLO` with
//!    its own listener address;
//! 2. the master waits for `world − 1` HELLOs, assigns ranks (explicit
//!    ranks are honoured, the rest are filled in arrival order), and
//!    answers each worker with `WELCOME` carrying the full peer table. The
//!    HELLO connection is kept — it *is* the mesh link between that worker
//!    and rank 0;
//! 3. each rank `r` dials ranks `1..r` (first frame: `IDENT r`) and
//!    accepts ranks `r+1..world`, so every pair shares exactly one
//!    connection — connects succeed before the peer calls `accept` thanks
//!    to the listen backlog, so no ordering deadlock exists;
//! 4. every worker sends `READY` to rank 0 once its mesh is complete;
//!    rank 0 answers `GO` to all — the pre-step-0 barrier.
//!
//! # Data path
//!
//! Per peer, the endpoint runs a **writer thread** draining a bounded
//! outbox (so [`Transport::send`] never blocks the comm thread's
//! collectives until `outbox_frames` of backpressure have accumulated) and
//! a **reader thread** demultiplexing incoming frames into that peer's
//! inbox (so [`Transport::recv`] stays ordered per peer). Payload buffers
//! come from a shared pool ([`Transport::take_buffer`] /
//! [`Transport::recycle_buffer`]), so the steady-state hot path is
//! allocation-free on both sides of the socket.
//!
//! Failures never hang: sends and receives carry configurable deadlines
//! surfacing as [`CollectiveError::Timeout`], a dead peer surfaces as
//! [`CollectiveError::Disconnected`], and dropping the endpoint sends
//! shutdown frames, force-closes the sockets, and joins every thread.
//!
//! # Failure detection and world generations
//!
//! When [`NetConfig::heartbeat_interval`] is set, a **monitor thread**
//! queues a heartbeat frame to every peer each interval and watches frame
//! arrival times (any frame counts as liveness, so busy data links need no
//! heartbeats). A peer silent for `heartbeat_miss_budget` consecutive
//! intervals — without having sent a graceful shutdown — is declared dead:
//! the monitor records the verdict and force-closes every socket, so all
//! blocked sends and receives fail fast with [`CollectiveError::Aborted`]
//! instead of each waiting out its own deadline.
//!
//! Every data frame is stamped with the world **generation** (the elastic
//! launcher's restart counter, [`NetConfig::generation`]). The rendezvous
//! rejects joins from a different generation, and the readers reject
//! mismatched data frames with [`CollectiveError::StaleGeneration`] —
//! traffic from a previous incarnation of a restarted world can never
//! corrupt a live collective.

use std::fmt;
use std::io::{BufReader, Read};
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dear_collectives::{CollectiveError, Message, Transport, WireBuf, WorldChange};
use dear_core::trace;

use crate::affinity;
use crate::config::{NetConfig, NetError};
use crate::frame::{
    decode_generation, decode_ident, encode_generation, encode_ident, read_frame,
    read_frame_header, write_data_frame, write_frame, FrameKind, Hello, Welcome,
    DATA_BODY_OVERHEAD, MAX_FRAME_BYTES,
};

/// Bytes of frame overhead per wire frame (the 5-byte header), widened for
/// traffic-counter arithmetic.
const FRAME_HEADER_BYTES: u64 = crate::frame::FRAME_HEADER_BYTES as u64;

/// Per-peer traffic counters, bumped lock-free by the reader/writer threads
/// and the send path. Snapshot via [`TcpEndpoint::stats`].
#[derive(Default)]
struct PeerCounters {
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    send_retries: AtomicU64,
}

/// A snapshot of one peer link's traffic from [`TcpEndpoint::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerStats {
    /// The remote rank.
    pub peer: usize,
    /// Wire bytes written to this peer (headers included).
    pub bytes_sent: u64,
    /// Wire bytes read from this peer (headers included).
    pub bytes_recv: u64,
    /// Times a send found the outbox full and had to back off.
    pub send_retries: u64,
}

/// The wire size of a data body carrying `wire_bytes` of encoded payload
/// (generation stamp + dtype tag + element bytes), when it exceeds the
/// frame limit. Byte-denominated: a bf16 payload can carry twice the
/// elements of an f32 payload before hitting the limit.
fn oversize_bytes(wire_bytes: usize) -> Option<u64> {
    let bytes = DATA_BODY_OVERHEAD as u64 + wire_bytes as u64;
    (bytes > MAX_FRAME_BYTES as u64).then_some(bytes)
}

/// Buffers kept in the shared pool; bounds pool memory at roughly
/// `POOL_CAP × largest-segment` bytes (matches `LocalEndpoint`).
const POOL_CAP: usize = 64;

/// Default per-buffer capacity ceiling retained by the pool
/// ([`NetConfig::pool_max_buf_bytes`]). Sized to hold any sensible
/// segment; a one-off giant collective no longer pins its high-water
/// allocation for the rest of the run.
pub(crate) const POOL_MAX_BUF_BYTES: usize = 4 << 20;

/// Shared reusable wire-byte pool; reader threads take from it for
/// incoming payloads, writer threads and `recycle_buffer` return to it.
/// Buffers over `max_buf_bytes` are shrunk on return, so retained memory
/// decays back to the cap after an outsized collective.
struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    max_buf_bytes: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::with_max(POOL_MAX_BUF_BYTES)
    }
}

impl BufferPool {
    fn with_max(max_buf_bytes: usize) -> BufferPool {
        BufferPool {
            bufs: Mutex::new(Vec::new()),
            max_buf_bytes: max_buf_bytes.max(1),
        }
    }

    fn take(&self, capacity_bytes: usize) -> Vec<u8> {
        let mut pool = self.bufs.lock().expect("buffer pool poisoned");
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity_bytes);
                buf
            }
            None => Vec::with_capacity(capacity_bytes),
        }
    }

    fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        if buf.capacity() > self.max_buf_bytes {
            buf.clear();
            buf.shrink_to(self.max_buf_bytes);
        }
        let mut pool = self.bufs.lock().expect("buffer pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Largest retained buffer capacity — test hook for the decay
    /// guarantee.
    #[cfg(test)]
    fn high_water_bytes(&self) -> usize {
        let pool = self.bufs.lock().expect("buffer pool poisoned");
        pool.iter().map(Vec::capacity).max().unwrap_or(0)
    }
}

/// Commands consumed by a peer's writer thread.
enum WriterCmd {
    /// Frame this payload and put it on the wire, then recycle the buffer.
    Data(WireBuf),
    /// Write a liveness probe (the failure detector's periodic frame).
    Heartbeat,
    /// Write a graceful shutdown frame and exit.
    Shutdown,
}

/// Liveness bookkeeping shared by the reader threads, the heartbeat
/// monitor, and the send/recv error paths.
struct Health {
    inner: Mutex<HealthInner>,
}

struct HealthInner {
    /// When each peer was last heard from (any frame). Indexed by rank;
    /// the own-rank slot is unused.
    last_seen: Vec<Instant>,
    /// Peers that sent a graceful shutdown — gone, but not failed; exempt
    /// from death detection.
    departed: Vec<bool>,
    /// Set once by the monitor when a peer misses its heartbeat budget;
    /// the whole endpoint is torn down at that point.
    aborted: Option<usize>,
    /// Per-peer generation-mismatch verdicts: `stale[p]` holds the first
    /// foreign generation seen from peer `p`. A map rather than a single
    /// slot because resize churn can produce stale frames from several
    /// old-incarnation peers at once — each must keep its own verdict so
    /// every affected channel reports [`CollectiveError::StaleGeneration`]
    /// deterministically instead of only the first one observed.
    stale: Vec<Option<u64>>,
}

impl Health {
    fn new(world: usize) -> Self {
        Health {
            inner: Mutex::new(HealthInner {
                last_seen: vec![Instant::now(); world],
                departed: vec![false; world],
                aborted: None,
                stale: vec![None; world],
            }),
        }
    }

    fn saw(&self, peer: usize) {
        self.inner.lock().expect("health poisoned").last_seen[peer] = Instant::now();
    }

    fn mark_departed(&self, peer: usize) {
        let mut h = self.inner.lock().expect("health poisoned");
        h.departed[peer] = true;
        h.last_seen[peer] = Instant::now();
    }

    /// Records the first foreign generation seen from `peer` (later
    /// mismatches from the same peer keep the original verdict).
    fn mark_stale(&self, peer: usize, actual: u64) {
        let mut h = self.inner.lock().expect("health poisoned");
        if h.stale[peer].is_none() {
            h.stale[peer] = Some(actual);
        }
    }
}

/// One rank's endpoint of a TCP cluster. See the [module docs](self) for
/// the protocol; see [`crate::tcp_loopback`] for a single-process
/// multi-thread variant used by tests and benches.
pub struct TcpEndpoint {
    rank: usize,
    world: usize,
    generation: u64,
    send_timeout: Duration,
    recv_timeout: Mutex<Option<Duration>>,
    /// `outboxes[p]` feeds peer `p`'s writer thread. `None` at own rank.
    outboxes: Vec<Option<SyncSender<WriterCmd>>>,
    /// `inboxes[p]` is fed by peer `p`'s reader thread. `None` at own rank.
    inboxes: Vec<Option<Mutex<Receiver<WireBuf>>>>,
    pool: Arc<BufferPool>,
    health: Arc<Health>,
    counters: Arc<Vec<PeerCounters>>,
    writers: Vec<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    /// The heartbeat monitor: a stop channel plus its join handle.
    monitor: Option<(mpsc::Sender<()>, JoinHandle<()>)>,
    /// Stream clones used by `Drop` to force blocked readers out.
    peer_streams: Vec<TcpStream>,
    /// Host placement and previous-generation identity tables from the
    /// WELCOME; see [`TcpEndpoint::host_ids`] / [`TcpEndpoint::prev_ranks`].
    tables: MeshTables,
    /// The configuration this endpoint was built from, with rank, world,
    /// generation, and master address kept current across in-place
    /// resizes — the seed for the next resize rendezvous.
    cfg: NetConfig,
}

/// The placement tables the master publishes in every WELCOME: which
/// physical host each rank lives on, and which rank each one held in the
/// previous generation (identity at the initial rendezvous, `u32::MAX` for
/// fresh joiners). Both indexed by (current) rank.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MeshTables {
    host_ids: Vec<u64>,
    prev_ranks: Vec<u32>,
}

impl MeshTables {
    /// Tables for a fresh world where nobody declared a host: every rank
    /// on its own pseudo-host, prev rank = own rank.
    fn pseudo(world: usize) -> MeshTables {
        MeshTables {
            host_ids: (0..world).map(pseudo_host).collect(),
            prev_ranks: (0..world).map(|r| r as u32).collect(),
        }
    }
}

/// The unique pseudo-host the master assigns a rank that declared no
/// [`NetConfig::host_id`]. Distinct from [`NetConfig::UNKNOWN_HOST`] (the
/// wire sentinel) for every rank, so "unknown" never reads as co-located —
/// with anyone, or with the sentinel itself.
fn pseudo_host(rank: usize) -> u64 {
    u64::MAX - 1 - rank as u64
}

impl fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

impl TcpEndpoint {
    /// Joins (or, for rank 0, hosts) the rendezvous described in the
    /// [module docs](self) and returns a ready endpoint: all `world − 1`
    /// peer connections established and the step-0 barrier passed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when binding, connecting (after retries), or
    /// the handshake fails or times out.
    pub fn connect(cfg: &NetConfig) -> Result<TcpEndpoint, NetError> {
        Self::connect_inner(cfg, None)
    }

    /// [`TcpEndpoint::connect`] with a pre-bound master listener — lets a
    /// harness bind port 0 first and hand workers the resolved address.
    ///
    /// # Errors
    ///
    /// As [`TcpEndpoint::connect`]; also if `cfg.rank` is not `Some(0)`.
    pub fn connect_with_listener(
        cfg: &NetConfig,
        listener: TcpListener,
    ) -> Result<TcpEndpoint, NetError> {
        if cfg.rank != Some(0) {
            return Err(NetError::Config(
                "a pre-bound master listener requires rank 0".to_string(),
            ));
        }
        Self::connect_inner(cfg, Some(listener))
    }

    fn connect_inner(cfg: &NetConfig, pre: Option<TcpListener>) -> Result<TcpEndpoint, NetError> {
        if cfg.world == 0 {
            return Err(NetError::Config("world size must be positive".to_string()));
        }
        if cfg.world == 1 {
            let mut stored = cfg.clone();
            stored.rank = Some(0);
            return Ok(TcpEndpoint {
                rank: 0,
                world: 1,
                generation: cfg.generation,
                send_timeout: cfg.send_timeout,
                recv_timeout: Mutex::new(cfg.recv_timeout),
                outboxes: vec![None],
                inboxes: vec![None],
                pool: Arc::new(BufferPool::default()),
                health: Arc::new(Health::new(1)),
                counters: Arc::new(vec![PeerCounters::default()]),
                writers: Vec::new(),
                readers: Vec::new(),
                monitor: None,
                peer_streams: Vec::new(),
                tables: MeshTables {
                    host_ids: vec![cfg.host_id.unwrap_or_else(|| pseudo_host(0))],
                    prev_ranks: vec![0],
                },
                cfg: stored,
            });
        }
        let t0 = Instant::now();
        let (rank, streams, tables) = match cfg.rank {
            Some(0) => rendezvous_master(cfg, pre)?,
            _ => {
                let (rank, _world, streams, tables) = rendezvous_worker(cfg)?;
                (rank, streams, tables)
            }
        };
        trace::record(
            &format!("net.r{rank}/net"),
            trace::TaskKind::Other,
            || format!("rendezvous[g{}]", cfg.generation),
            t0,
        );
        Self::from_mesh(rank, cfg, streams, tables)
    }

    /// Spawns the per-peer reader/writer threads over an established mesh,
    /// plus the heartbeat monitor when failure detection is enabled.
    fn from_mesh(
        rank: usize,
        cfg: &NetConfig,
        streams: Vec<Option<TcpStream>>,
        tables: MeshTables,
    ) -> Result<TcpEndpoint, NetError> {
        let world = cfg.world;
        let pool = Arc::new(BufferPool::with_max(cfg.pool_max_buf_bytes));
        let health = Arc::new(Health::new(world));
        let counters: Arc<Vec<PeerCounters>> =
            Arc::new((0..world).map(|_| PeerCounters::default()).collect());
        let mut outboxes = Vec::with_capacity(world);
        let mut inboxes = Vec::with_capacity(world);
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        let mut peer_streams = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else {
                if peer != rank {
                    return Err(NetError::Protocol(format!(
                        "rendezvous left no connection to rank {peer}"
                    )));
                }
                outboxes.push(None);
                inboxes.push(None);
                continue;
            };
            stream
                .set_nodelay(true)
                .map_err(|e| NetError::io(format!("setting TCP_NODELAY for rank {peer}"), e))?;
            // Handshake deadlines no longer apply: readers block until
            // woken (Drop force-closes the socket), writers are bounded by
            // the send deadline.
            stream
                .set_read_timeout(None)
                .map_err(|e| NetError::io(format!("clearing read deadline for rank {peer}"), e))?;
            let wstream = stream
                .try_clone()
                .map_err(|e| NetError::io(format!("cloning stream for rank {peer}"), e))?;
            wstream
                .set_write_timeout(Some(cfg.send_timeout))
                .map_err(|e| NetError::io(format!("setting write deadline for rank {peer}"), e))?;
            let shutdown_handle = stream
                .try_clone()
                .map_err(|e| NetError::io(format!("cloning stream for rank {peer}"), e))?;
            let (otx, orx) = mpsc::sync_channel(cfg.outbox_frames);
            let (itx, irx) = mpsc::channel();
            let wpool = Arc::clone(&pool);
            let wcounters = Arc::clone(&counters);
            let generation = cfg.generation;
            let pin_core = cfg.pin_comm;
            writers.push(std::thread::spawn(move || {
                writer_loop(wstream, generation, orx, &wpool, &wcounters[peer], pin_core)
            }));
            let rpool = Arc::clone(&pool);
            let rhealth = Arc::clone(&health);
            let rcounters = Arc::clone(&counters);
            readers.push(std::thread::spawn(move || {
                reader_loop(
                    stream,
                    peer,
                    generation,
                    itx,
                    &rpool,
                    &rhealth,
                    &rcounters[peer],
                    pin_core,
                )
            }));
            outboxes.push(Some(otx));
            inboxes.push(Some(Mutex::new(irx)));
            peer_streams.push(shutdown_handle);
        }
        let monitor = match cfg.heartbeat_interval {
            Some(interval) if world > 1 => {
                let (stop_tx, stop_rx) = mpsc::channel();
                let mhealth = Arc::clone(&health);
                let mouts: Vec<Option<SyncSender<WriterCmd>>> = outboxes.clone();
                let msockets: Vec<TcpStream> = peer_streams
                    .iter()
                    .map(|s| {
                        s.try_clone()
                            .map_err(|e| NetError::io("cloning stream for the monitor", e))
                    })
                    .collect::<Result<_, _>>()?;
                let budget = cfg.heartbeat_miss_budget.max(1);
                let handle = std::thread::spawn(move || {
                    heartbeat_monitor(interval, budget, &mhealth, &mouts, &msockets, &stop_rx)
                });
                Some((stop_tx, handle))
            }
            _ => None,
        };
        if tables.host_ids.len() != world || tables.prev_ranks.len() != world {
            return Err(NetError::Protocol(format!(
                "WELCOME tables cover {} host ids / {} prev ranks for a world of {world}",
                tables.host_ids.len(),
                tables.prev_ranks.len()
            )));
        }
        let mut stored = cfg.clone();
        stored.rank = Some(rank);
        Ok(TcpEndpoint {
            rank,
            world,
            generation: cfg.generation,
            send_timeout: cfg.send_timeout,
            recv_timeout: Mutex::new(cfg.recv_timeout),
            outboxes,
            inboxes,
            pool,
            health,
            counters,
            writers,
            readers,
            monitor,
            peer_streams,
            tables,
            cfg: stored,
        })
    }

    /// Physical-host identity of every rank (indexed by rank), as published
    /// by the rendezvous master. Ranks that configured no
    /// [`NetConfig::host_id`] appear on a unique pseudo-host each, so two
    /// equal entries always mean genuinely co-located ranks — the test a
    /// tiered transport uses to route intra-node traffic over shared
    /// memory, and the input to topology-aware hierarchical groups.
    #[must_use]
    pub fn host_ids(&self) -> &[u64] {
        &self.tables.host_ids
    }

    /// Each rank's rank in the previous world generation (indexed by
    /// current rank): identity after the initial rendezvous, `u32::MAX`
    /// for a fresh joiner admitted by an in-place resize. Survivors of a
    /// resize use this to re-locate peers they knew by old rank — master
    /// election means new ranks are *not* ascending in old rank.
    #[must_use]
    pub fn prev_ranks(&self) -> &[u32] {
        &self.tables.prev_ranks
    }

    /// Per-peer wire traffic so far, in rank order (own rank omitted):
    /// bytes written, bytes read, and send-side backoff retries. Cheap —
    /// relaxed atomic reads — so callers may poll it mid-run.
    #[must_use]
    pub fn stats(&self) -> Vec<PeerStats> {
        self.counters
            .iter()
            .enumerate()
            .filter(|&(peer, _)| peer != self.rank)
            .map(|(peer, c)| PeerStats {
                peer,
                bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
                bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
                send_retries: c.send_retries.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The world generation this endpoint was created in (the elastic
    /// launcher's restart counter; 0 for a first launch).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Maps a low-level channel failure on `peer` to the richer verdict
    /// the health state holds, if any: a stale-generation frame from that
    /// peer, or an endpoint-wide abort by the failure detector.
    fn failure_verdict(&self, peer: usize) -> Option<CollectiveError> {
        let h = self.health.inner.lock().expect("health poisoned");
        if let Some(actual) = h.stale.get(peer).copied().flatten() {
            return Some(CollectiveError::StaleGeneration {
                peer,
                expected: self.generation,
                actual,
            });
        }
        h.aborted.map(|p| CollectiveError::Aborted { peer: p })
    }

    /// Every peer that has sent a frame from a foreign generation, in rank
    /// order, with the first foreign generation each one presented.
    /// Deterministic regardless of the order the mismatches arrived in —
    /// concurrent stale peers during resize churn all keep their verdicts.
    #[must_use]
    pub fn stale_peers(&self) -> Vec<(usize, u64)> {
        let h = self.health.inner.lock().expect("health poisoned");
        h.stale
            .iter()
            .enumerate()
            .filter_map(|(p, g)| g.map(|g| (p, g)))
            .collect()
    }

    /// Stops the monitor, drains and joins the writer threads, force-closes
    /// every socket, and joins the readers. Idempotent; shared by `Drop`
    /// and the in-place resize path (which tears the old mesh down before
    /// re-running rendezvous at the next generation).
    fn teardown(&mut self) {
        // Stop the heartbeat monitor first: it holds socket clones and
        // must not race the orderly writer drain below by force-closing
        // sockets over a false death verdict mid-teardown.
        if let Some((stop_tx, handle)) = self.monitor.take() {
            let _ = stop_tx.send(());
            let _ = handle.join();
        }
        // Queue a graceful shutdown frame where the outbox has room, then
        // close every outbox: writers drain all queued data, write the
        // shutdown frame, and exit (their write deadline bounds this even
        // against a wedged peer).
        for tx in self.outboxes.iter_mut() {
            if let Some(tx) = tx.take() {
                let _ = tx.try_send(WriterCmd::Shutdown);
            }
        }
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
        // Force readers out of blocking reads. All frames we were owed have
        // been consumed by completed collectives, so nothing of value is
        // discarded.
        for s in self.peer_streams.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }

    /// Joins a **running, resized** world as a fresh rank (grow side of
    /// in-place elastic resize): dials the resize rendezvous the survivors
    /// derive for `generation` and presents no prior identity, so the
    /// master appends this endpoint after the survivors' dense ranks.
    ///
    /// `cfg.master_addr` must be the *original* world's master address —
    /// the same derivation the survivors use maps it to the resize
    /// address. The configured `cfg.world` and `cfg.rank` are ignored; the
    /// WELCOME dictates both.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the resize rendezvous cannot be reached
    /// within the connect deadline or the handshake fails at every derived
    /// port probe (the survivors advance ports when the first derivation
    /// is owned by a foreign process; a joiner walks the same sequence).
    pub fn join_resize(cfg: &NetConfig, generation: u64) -> Result<TcpEndpoint, NetError> {
        let (host, base_port) = split_host_port(&cfg.master_addr)?;
        let mut joined = None;
        let mut last_err = None;
        for probe in 0..NetConfig::RESIZE_PORT_PROBES {
            let addr = format!("{host}:{}", resize_port(base_port, generation, probe));
            match resize_worker(cfg, None, generation, &addr) {
                Ok(got) => {
                    joined = Some((got, addr));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let ((rank, world, streams, tables), addr) = joined.ok_or_else(|| {
            last_err
                .unwrap_or_else(|| NetError::Config("no resize port probes configured".to_string()))
        })?;
        let mut rcfg = cfg.clone();
        rcfg.rank = Some(rank);
        rcfg.world = world;
        rcfg.generation = generation;
        rcfg.master_addr = addr;
        Self::from_mesh(rank, &rcfg, streams, tables)
    }
}

/// The failure-detector thread: each interval, queue a heartbeat to every
/// live peer and check arrival times. A peer silent for `budget` intervals
/// (and not gracefully departed) is declared dead — the verdict is
/// recorded and every socket force-closed so all blocked operations
/// surface [`CollectiveError::Aborted`] immediately.
fn heartbeat_monitor(
    interval: Duration,
    budget: u32,
    health: &Health,
    outboxes: &[Option<SyncSender<WriterCmd>>],
    sockets: &[TcpStream],
    stop: &Receiver<()>,
) {
    let allowance = interval * budget;
    loop {
        match stop.recv_timeout(interval) {
            Err(mpsc::RecvTimeoutError::Timeout) => (),
            // Stop requested or the endpoint is gone either way.
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        // Probe: a full outbox means data is flowing, which is liveness
        // enough on its own — skip rather than block the monitor.
        let mut probes = 0usize;
        for tx in outboxes.iter().flatten() {
            if tx.try_send(WriterCmd::Heartbeat).is_ok() {
                probes += 1;
            }
        }
        trace::add_counter("net.heartbeat_probes", probes as f64);
        let now = Instant::now();
        let verdict = {
            let mut h = health.inner.lock().expect("health poisoned");
            if h.aborted.is_some() {
                return;
            }
            let dead = h
                .last_seen
                .iter()
                .enumerate()
                .find(|&(p, &seen)| {
                    !h.departed[p]
                        && outboxes.get(p).is_some_and(Option::is_some)
                        && now.duration_since(seen) > allowance
                })
                .map(|(p, _)| p);
            if let Some(p) = dead {
                h.aborted = Some(p);
            }
            dead
        };
        if verdict.is_some() {
            // Tear the endpoint down: closing the sockets pops readers out
            // of blocked reads and fails writer writes, so every pending
            // send/recv resolves now instead of at its own deadline.
            for s in sockets {
                let _ = s.shutdown(Shutdown::Both);
            }
            return;
        }
    }
}

/// Writer thread: frames and flushes each queued payload, recycling the
/// buffer. Exits on a `Shutdown` command (writing a graceful shutdown
/// frame), on channel close (endpoint dropped), or on a write error —
/// writes carry a socket deadline, so a wedged peer cannot block forever.
fn writer_loop(
    mut stream: TcpStream,
    generation: u64,
    orx: Receiver<WriterCmd>,
    pool: &BufferPool,
    counters: &PeerCounters,
    pin_core: Option<usize>,
) {
    if let Some(core) = pin_core {
        affinity::pin_current_thread(core);
    }
    // No userspace write buffering: every command is one whole frame, and
    // the vectored data path already lands header + payload in a single
    // syscall, so a BufWriter would only re-copy the payload.
    while let Ok(cmd) = orx.recv() {
        match cmd {
            WriterCmd::Data(payload) => {
                let wrote = write_data_frame(&mut stream, generation, &payload);
                pool.recycle(payload.into_bytes());
                match wrote {
                    Ok(n) => {
                        counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    // Dropping orx signals Disconnected to senders.
                    Err(_) => return,
                }
            }
            WriterCmd::Heartbeat => {
                if write_frame(
                    &mut stream,
                    FrameKind::Heartbeat,
                    &encode_generation(generation),
                )
                .is_err()
                {
                    return;
                }
                counters
                    .bytes_sent
                    .fetch_add(FRAME_HEADER_BYTES + 8, Ordering::Relaxed);
            }
            WriterCmd::Shutdown => {
                let _ = write_frame(&mut stream, FrameKind::Shutdown, &[]);
                return;
            }
        }
    }
}

/// Reader thread: demultiplexes incoming frames — data payloads go to the
/// peer's inbox (in pooled buffers), heartbeats only refresh liveness, a
/// shutdown frame or any error ends the stream. Every frame updates the
/// peer's last-seen time; a frame stamped with a foreign generation
/// records a stale verdict and ends the stream (surfacing as
/// [`CollectiveError::StaleGeneration`] on the receive side). Dropping the
/// inbox sender is what turns a dead peer into
/// [`CollectiveError::Disconnected`].
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    stream: TcpStream,
    peer: usize,
    generation: u64,
    itx: mpsc::Sender<WireBuf>,
    pool: &BufferPool,
    health: &Health,
    counters: &PeerCounters,
    pin_core: Option<usize>,
) {
    if let Some(core) = pin_core {
        affinity::pin_current_thread(core);
    }
    let mut r = BufReader::with_capacity(64 * 1024, stream);
    let mut body = Vec::new();
    loop {
        let Ok((kind, len)) = read_frame_header(&mut r) else {
            // Torn header, EOF, reset, or forced local close: the stream
            // is over either way — the dropped inbox sender surfaces it.
            return;
        };
        if kind == FrameKind::Data && len >= DATA_BODY_OVERHEAD {
            // Data payloads land straight in a pooled buffer — the old
            // path read into a scratch body then copied into the pool.
            let mut overhead = [0u8; DATA_BODY_OVERHEAD];
            if r.read_exact(&mut overhead).is_err() {
                return;
            }
            let payload_len = len - DATA_BODY_OVERHEAD;
            let mut buf = pool.take(payload_len);
            buf.resize(payload_len, 0);
            if r.read_exact(&mut buf).is_err() {
                // Torn mid-body (peer died between header and payload):
                // surfaces as Disconnected, never a hang.
                return;
            }
            counters
                .bytes_recv
                .fetch_add(FRAME_HEADER_BYTES + len as u64, Ordering::Relaxed);
            health.saw(peer);
            let stamp = u64::from_le_bytes(overhead[..8].try_into().expect("8 bytes"));
            // The payload is self-describing: decode by the frame's own
            // dtype tag. An unknown tag is stream corruption — end the
            // stream.
            let Some(dtype) = dear_collectives::DType::from_tag(overhead[8]) else {
                return;
            };
            if stamp != generation {
                health.mark_stale(peer, stamp);
                return;
            }
            // A byte count that doesn't divide into whole elements is
            // stream corruption — end the stream.
            let Ok(payload) = WireBuf::from_raw(dtype, buf) else {
                return;
            };
            if itx.send(payload).is_err() {
                return;
            }
            continue;
        }
        // Control frames (and a malformed short Data frame) keep the
        // scratch body — they are tiny and off the hot path.
        body.clear();
        body.resize(len, 0);
        if r.read_exact(&mut body).is_err() {
            return;
        }
        counters
            .bytes_recv
            .fetch_add(FRAME_HEADER_BYTES + len as u64, Ordering::Relaxed);
        match kind {
            // Shorter than the generation stamp + dtype tag: corrupt.
            FrameKind::Data => {
                health.saw(peer);
                return;
            }
            FrameKind::Heartbeat => {
                health.saw(peer);
                match decode_generation(&body) {
                    Ok(stamp) if stamp == generation => (),
                    Ok(stamp) => {
                        health.mark_stale(peer, stamp);
                        return;
                    }
                    Err(_) => return,
                }
            }
            FrameKind::Shutdown => {
                health.mark_departed(peer);
                return;
            }
            // Unexpected control frame: the stream is over.
            _ => return,
        }
    }
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CollectiveError> {
        self.check_peer(to)?;
        if let Some(bytes) = oversize_bytes(msg.wire_bytes()) {
            // The frame header's length field is a u32; letting this
            // through would truncate on the wire and desynchronize the
            // peer's stream.
            return Err(CollectiveError::Oversize {
                peer: to,
                bytes,
                max: MAX_FRAME_BYTES as u64,
            });
        }
        let tx = self.outboxes[to].as_ref().expect("validated peer");
        // A fabric-local deliver-at stamp must never reach the wire; this
        // surfaces the composition bug as a typed error (see
        // `Message::into_wire_payload`).
        let mut cmd = WriterCmd::Data(msg.into_wire_payload()?);
        let deadline = Instant::now() + self.send_timeout;
        loop {
            match tx.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    self.counters[to]
                        .send_retries
                        .fetch_add(1, Ordering::Relaxed);
                    if Instant::now() >= deadline {
                        return Err(CollectiveError::Timeout {
                            peer: to,
                            millis: self.send_timeout.as_millis() as u64,
                        });
                    }
                    cmd = c;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(self
                        .failure_verdict(to)
                        .unwrap_or(CollectiveError::Disconnected { peer: to }))
                }
            }
        }
    }

    fn recv(&self, from: usize) -> Result<Message, CollectiveError> {
        self.check_peer(from)?;
        let rx = self.inboxes[from]
            .as_ref()
            .expect("validated peer")
            .lock()
            .expect("inbox poisoned");
        let timeout = *self.recv_timeout.lock().expect("recv timeout poisoned");
        let payload = match timeout {
            None => rx.recv().map_err(|_| {
                self.failure_verdict(from)
                    .unwrap_or(CollectiveError::Disconnected { peer: from })
            })?,
            Some(dl) => rx.recv_timeout(dl).map_err(|e| {
                let plain = match e {
                    mpsc::RecvTimeoutError::Timeout => CollectiveError::Timeout {
                        peer: from,
                        millis: dl.as_millis() as u64,
                    },
                    mpsc::RecvTimeoutError::Disconnected => {
                        CollectiveError::Disconnected { peer: from }
                    }
                };
                self.failure_verdict(from).unwrap_or(plain)
            })?,
        };
        Ok(Message::new(payload))
    }

    fn set_recv_timeout(&self, timeout: Option<Duration>) -> bool {
        *self.recv_timeout.lock().expect("recv timeout poisoned") = timeout;
        true
    }

    fn take_buffer(&self, capacity_bytes: usize) -> Vec<u8> {
        self.pool.take(capacity_bytes)
    }

    fn recycle_buffer(&self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }

    /// In-place elastic resize: tears the old mesh down, re-runs rendezvous
    /// at generation `g+1` on a deterministically derived port (every
    /// survivor computes the same one, so no agreement on who survived is
    /// needed up front), and rebuilds the endpoint over whoever shows up
    /// within [`NetConfig::resize_window`].
    ///
    /// The first survivor to bind the derived address hosts the rendezvous
    /// (bind race as master election). `AddrInUse` losers join as workers,
    /// and so does any survivor whose bind fails for another reason — on a
    /// multi-host deployment the derived address lives on the master host,
    /// so every off-host survivor gets `AddrNotAvailable` and must dial in
    /// rather than fail the resize. If the master *host* itself died, no
    /// survivor can host the rendezvous at all: every worker attempt times
    /// out, the resize fails, and the supervised restart (which picks a
    /// fresh master address) is the fallback.
    ///
    /// If the derived port is owned by an unrelated process, the elected
    /// "workers" dial a listener that never speaks our protocol and the
    /// handshake fails; each survivor then advances to the next derived
    /// port ([`NetConfig::RESIZE_PORT_PROBES`] attempts, same deterministic
    /// sequence on every survivor) before giving up.
    ///
    /// Dense ranks: the elected master takes 0, the other survivors follow
    /// in ascending old-rank order, fresh joiners are appended in arrival
    /// order. The member list closes when the window expires; the resize
    /// fails — and the endpoint is left torn down, only fit for dropping —
    /// unless a strict majority of the old world is present (quorum, so a
    /// partitioned minority can never train on as if it were the world).
    ///
    /// `survivors` is ignored: membership is discovered by the rendezvous
    /// itself, which is what tolerates disagreement about who died.
    fn reconfigure(&mut self, survivors: Option<&[usize]>) -> Result<WorldChange, CollectiveError> {
        let _ = survivors;
        let old_rank = self.rank;
        let old_world = self.world;
        let new_gen = self.generation + 1;
        self.teardown();
        let cfg = self.cfg.clone();
        let reconf = |e: NetError| CollectiveError::Reconfigure {
            reason: e.to_string(),
        };
        let t0 = Instant::now();
        let (host, base_port) = split_host_port(&cfg.master_addr).map_err(reconf)?;
        let mut joined = None;
        let mut last_err = None;
        for probe in 0..NetConfig::RESIZE_PORT_PROBES {
            let addr = format!("{host}:{}", resize_port(base_port, new_gen, probe));
            match TcpListener::bind(addr.as_str()) {
                Ok(listener) => {
                    // Won the election: host the rendezvous here. A hosting
                    // failure (no quorum within the window) is final — the
                    // members were reachable at this port, there just were
                    // not enough of them, and retrying elsewhere would only
                    // split the survivors across ports.
                    let got = resize_master(&cfg, old_rank, old_world, new_gen, &addr, &listener)
                        .map_err(reconf)?;
                    joined = Some((got, addr));
                    break;
                }
                // Couldn't host here — `AddrInUse` (another survivor or a
                // foreign process owns the port) or e.g. `AddrNotAvailable`
                // (the derived host is not this machine) — so dial in as a
                // worker. A failed handshake means nobody of ours is
                // hosting this port (foreign owner, or the master host is
                // gone): advance to the next derived port.
                Err(_) => match resize_worker(&cfg, Some(old_rank), new_gen, &addr) {
                    Ok(got) => {
                        joined = Some((got, addr));
                        break;
                    }
                    Err(e) => last_err = Some(e),
                },
            }
        }
        let ((rank, world, streams, tables), addr) = match joined {
            Some(j) => j,
            None => {
                return Err(reconf(last_err.unwrap_or_else(|| {
                    NetError::Config("no resize port probes configured".to_string())
                })))
            }
        };
        let mut rcfg = cfg;
        rcfg.rank = Some(rank);
        rcfg.world = world;
        rcfg.generation = new_gen;
        rcfg.master_addr = addr;
        trace::record(
            &format!("net.r{rank}/net"),
            trace::TaskKind::Other,
            || format!("resize-rendezvous[g{new_gen}]"),
            t0,
        );
        *self = Self::from_mesh(rank, &rcfg, streams, tables).map_err(reconf)?;
        Ok(WorldChange {
            old_rank,
            old_world,
            new_rank: rank,
            new_world: world,
            generation: new_gen,
        })
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
        // With threads joined the counters are final: fold them into the
        // trace recorder so per-peer traffic rides along in the dump.
        if trace::enabled() {
            let r = self.rank;
            for st in self.stats() {
                let p = st.peer;
                trace::add_counter(&format!("net.r{r}.p{p}.bytes_sent"), st.bytes_sent as f64);
                trace::add_counter(&format!("net.r{r}.p{p}.bytes_recv"), st.bytes_recv as f64);
                trace::add_counter(
                    &format!("net.r{r}.p{p}.send_retries"),
                    st.send_retries as f64,
                );
            }
        }
    }
}

/// Dials `addr`, retrying with exponential backoff (connection refused just
/// means the peer's listener isn't up yet) until `cfg.connect_timeout`.
fn connect_with_retry(addr: &str, cfg: &NetConfig) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = NetConfig::CONNECT_BACKOFF_MIN;
    loop {
        let attempt = (|| -> std::io::Result<TcpStream> {
            let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
            })?;
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_secs(2))
                .max(Duration::from_millis(1));
            TcpStream::connect_timeout(&sockaddr, remaining)
        })();
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(NetError::Timeout {
                        context: format!("connecting to {addr} (last error: {e})"),
                        after: cfg.connect_timeout,
                    });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(NetConfig::CONNECT_BACKOFF_MAX);
            }
        }
    }
}

/// Accepts one connection with a deadline (std listeners have no accept
/// timeout, so this polls in non-blocking mode).
fn accept_deadline(
    listener: &TcpListener,
    deadline: Instant,
    what: &str,
) -> Result<(TcpStream, std::net::SocketAddr), NetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::io("setting listener non-blocking", e))?;
    loop {
        match listener.accept() {
            Ok((s, peer)) => {
                s.set_nonblocking(false)
                    .map_err(|e| NetError::io("restoring blocking mode", e))?;
                return Ok((s, peer));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout {
                        context: format!("waiting to accept {what}"),
                        after: Duration::ZERO,
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(NetError::io(format!("accepting {what}"), e)),
        }
    }
}

/// Applies the handshake socket deadlines to a rendezvous-phase stream.
fn set_handshake_deadlines(s: &TcpStream, cfg: &NetConfig) -> Result<(), NetError> {
    s.set_read_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("setting handshake read deadline", e))?;
    s.set_write_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("setting handshake write deadline", e))
}

/// Reads one frame expecting `want`, surfacing anything else as a protocol
/// violation.
fn expect_frame(
    s: &mut TcpStream,
    want: FrameKind,
    body: &mut Vec<u8>,
    who: &str,
) -> Result<(), NetError> {
    let got = read_frame(s, body).map_err(|e| NetError::io(format!("reading from {who}"), e))?;
    if got != want {
        return Err(NetError::Protocol(format!(
            "expected {want:?} from {who}, got {got:?}"
        )));
    }
    Ok(())
}

/// Rank 0's side of the rendezvous: collect HELLOs, assign ranks, publish
/// the peer table, then run the READY/GO barrier. The HELLO connections
/// become rank 0's mesh links.
fn rendezvous_master(
    cfg: &NetConfig,
    pre: Option<TcpListener>,
) -> Result<(usize, Vec<Option<TcpStream>>, MeshTables), NetError> {
    let world = cfg.world;
    let deadline = Instant::now() + cfg.handshake_timeout;
    let listener = match pre {
        Some(l) => l,
        None => bind_master_with_retry(&cfg.master_addr, deadline)?,
    };
    let mut body = Vec::new();
    let mut pending: Vec<(TcpStream, Hello, IpAddr)> = Vec::with_capacity(world - 1);
    while pending.len() < world - 1 {
        let (mut s, peer) = accept_deadline(&listener, deadline, "a worker HELLO")?;
        set_handshake_deadlines(&s, cfg)?;
        expect_frame(&mut s, FrameKind::Hello, &mut body, "worker")?;
        let hello = Hello::decode(&body).map_err(|e| NetError::io("decoding HELLO", e))?;
        if hello.generation != cfg.generation {
            // A straggler from a previous incarnation of a restarted
            // world: refuse it and keep waiting for current-generation
            // members (the straggler sees its connection die).
            drop(s);
            continue;
        }
        pending.push((s, hello, peer.ip()));
    }
    // Assign ranks: explicit requests first, then fill in arrival order.
    let mut taken = vec![false; world];
    taken[0] = true;
    let mut assigned: Vec<Option<usize>> = vec![None; pending.len()];
    for (i, (_, hello, _)) in pending.iter().enumerate() {
        if hello.rank != u32::MAX {
            let r = hello.rank as usize;
            if r == 0 || r >= world || taken[r] {
                return Err(NetError::Protocol(format!(
                    "worker requested rank {r}, which is invalid or already taken (world {world})"
                )));
            }
            taken[r] = true;
            assigned[i] = Some(r);
        }
    }
    for slot in assigned.iter_mut().filter(|s| s.is_none()) {
        let r = taken.iter().position(|t| !t).expect("a free rank exists");
        taken[r] = true;
        *slot = Some(r);
    }
    let assigned: Vec<usize> = assigned
        .into_iter()
        .map(|s| s.expect("all slots assigned"))
        .collect();
    let (streams, tables) = master_publish_and_barrier(
        &cfg.master_addr,
        world,
        cfg.generation,
        cfg.host_id,
        None,
        pending,
        &assigned,
    )?;
    Ok((0, streams, tables))
}

/// The master's mesh-publication tail, shared by the initial rendezvous
/// and the resize rendezvous: build the dialable peer table and the
/// placement tables, WELCOME every worker with its assigned rank, then run
/// the READY/GO barrier. The HELLO connections become the master's mesh
/// links (the master is rank 0).
///
/// `master_prev_rank` distinguishes the two callers: `None` at the initial
/// rendezvous, where a HELLO's rank field is a *request* and every rank's
/// previous rank is itself; `Some(old_rank)` at a resize, where the rank
/// field is the old-rank identity claim republished as `prev_ranks`
/// (`u32::MAX` for fresh joiners).
#[allow(clippy::too_many_arguments)]
fn master_publish_and_barrier(
    master_addr: &str,
    world: usize,
    generation: u64,
    master_host_id: Option<u64>,
    master_prev_rank: Option<u32>,
    pending: Vec<(TcpStream, Hello, IpAddr)>,
    assigned: &[usize],
) -> Result<(Vec<Option<TcpStream>>, MeshTables), NetError> {
    let mut body = Vec::new();
    // Build the dialable peer table and the placement tables.
    let mut addrs = vec![String::new(); world];
    addrs[0] = master_addr.to_string();
    let mut tables = MeshTables::pseudo(world);
    tables.host_ids[0] = master_host_id.unwrap_or_else(|| pseudo_host(0));
    if let Some(prev) = master_prev_rank {
        tables.prev_ranks[0] = prev;
    }
    for ((_, hello, seen_ip), &rank) in pending.iter().zip(assigned) {
        let host = if hello.host.is_empty() || hello.host == "0.0.0.0" {
            seen_ip.to_string()
        } else {
            hello.host.clone()
        };
        addrs[rank] = format!("{host}:{}", hello.port);
        if hello.host_id != NetConfig::UNKNOWN_HOST {
            tables.host_ids[rank] = hello.host_id;
        }
        if master_prev_rank.is_some() {
            tables.prev_ranks[rank] = hello.rank;
        }
    }
    // WELCOME everyone; the HELLO connections become mesh links to rank 0.
    let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    for ((mut s, _, _), &rank) in pending.into_iter().zip(assigned) {
        let welcome = Welcome {
            rank: rank as u32,
            world: world as u32,
            generation,
            addrs: addrs.clone(),
            host_ids: tables.host_ids.clone(),
            prev_ranks: tables.prev_ranks.clone(),
        };
        write_frame(&mut s, FrameKind::Welcome, &welcome.encode())
            .map_err(|e| NetError::io(format!("sending WELCOME to rank {rank}"), e))?;
        streams[rank] = Some(s);
    }
    // Barrier: one READY per worker, then GO to all.
    for (r, slot) in streams.iter_mut().enumerate().skip(1) {
        let s = slot.as_mut().expect("welcomed worker");
        expect_frame(s, FrameKind::Ready, &mut body, &format!("rank {r}"))?;
    }
    for (r, slot) in streams.iter_mut().enumerate().skip(1) {
        let s = slot.as_mut().expect("welcomed worker");
        write_frame(s, FrameKind::Go, &[])
            .map_err(|e| NetError::io(format!("sending GO to rank {r}"), e))?;
    }
    Ok((streams, tables))
}

/// A worker's side of the rendezvous: HELLO the master, learn rank and
/// peer table, dial lower ranks, accept higher ranks, then barrier.
#[allow(clippy::type_complexity)]
fn rendezvous_worker(
    cfg: &NetConfig,
) -> Result<(usize, usize, Vec<Option<TcpStream>>, MeshTables), NetError> {
    let hello_rank = cfg.rank.map_or(u32::MAX, |r| r as u32);
    let got = worker_mesh(cfg, &cfg.master_addr, hello_rank, cfg.generation, true)?;
    debug_assert_eq!(got.1, cfg.world);
    Ok(got)
}

/// The worker's mesh protocol, shared by the initial rendezvous and the
/// resize rendezvous: HELLO the master at `master_addr` (with `hello_rank`
/// as either a rank request or, during a resize, the old-rank identity
/// claim), learn the assigned rank and peer table from the WELCOME, dial
/// lower ranks, accept higher ranks, then barrier.
///
/// With `fixed_world`, the WELCOME must agree with `cfg.world` and the
/// assigned rank must match a configured `cfg.rank` — the initial
/// rendezvous invariants. A resize passes `false`: the world size and this
/// endpoint's rank are exactly what the rendezvous exists to determine.
#[allow(clippy::type_complexity)]
fn worker_mesh(
    cfg: &NetConfig,
    master_addr: &str,
    hello_rank: u32,
    generation: u64,
    fixed_world: bool,
) -> Result<(usize, usize, Vec<Option<TcpStream>>, MeshTables), NetError> {
    let listener = TcpListener::bind((cfg.listen_host.as_str(), 0))
        .map_err(|e| NetError::io(format!("binding worker listener on {}", cfg.listen_host), e))?;
    let port = listener
        .local_addr()
        .map_err(|e| NetError::io("reading listener address", e))?
        .port();
    let mut master = connect_with_retry(master_addr, cfg)?;
    set_handshake_deadlines(&master, cfg)?;
    let hello = Hello {
        rank: hello_rank,
        port,
        generation,
        host_id: cfg.host_id.unwrap_or(NetConfig::UNKNOWN_HOST),
        host: if cfg.listen_host == "0.0.0.0" {
            String::new()
        } else {
            cfg.listen_host.clone()
        },
    };
    write_frame(&mut master, FrameKind::Hello, &hello.encode())
        .map_err(|e| NetError::io("sending HELLO", e))?;
    let mut body = Vec::new();
    expect_frame(&mut master, FrameKind::Welcome, &mut body, "master")?;
    let welcome = Welcome::decode(&body).map_err(|e| NetError::io("decoding WELCOME", e))?;
    let world = welcome.world as usize;
    if fixed_world && world != cfg.world {
        return Err(NetError::Protocol(format!(
            "master believes world is {world}, this worker was configured for {}",
            cfg.world
        )));
    }
    if welcome.generation != generation {
        return Err(NetError::Protocol(format!(
            "master is running generation {}, this worker was launched for generation {generation}",
            welcome.generation
        )));
    }
    let rank = welcome.rank as usize;
    if rank == 0 || rank >= world || (fixed_world && cfg.rank.is_some_and(|r| r != rank)) {
        return Err(NetError::Protocol(format!(
            "master assigned rank {rank}, configured rank {:?} (world {world})",
            cfg.rank
        )));
    }
    let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    streams[0] = Some(master);
    // Dial every lower non-zero rank, identifying ourselves.
    for (peer, addr) in welcome.addrs.iter().enumerate().take(rank).skip(1) {
        let mut s = connect_with_retry(addr, cfg)?;
        set_handshake_deadlines(&s, cfg)?;
        write_frame(&mut s, FrameKind::Ident, &encode_ident(rank as u32))
            .map_err(|e| NetError::io(format!("sending IDENT to rank {peer}"), e))?;
        streams[peer] = Some(s);
    }
    // Accept every higher rank.
    let deadline = Instant::now() + cfg.handshake_timeout;
    for _ in rank + 1..world {
        let (mut s, _) = accept_deadline(&listener, deadline, "a peer IDENT")?;
        set_handshake_deadlines(&s, cfg)?;
        expect_frame(&mut s, FrameKind::Ident, &mut body, "peer")?;
        let peer = decode_ident(&body).map_err(|e| NetError::io("decoding IDENT", e))? as usize;
        if peer <= rank || peer >= world {
            return Err(NetError::Protocol(format!(
                "rank {peer} dialled rank {rank}; only higher ranks dial lower ones"
            )));
        }
        if streams[peer].is_some() {
            return Err(NetError::Protocol(format!("rank {peer} dialled twice")));
        }
        streams[peer] = Some(s);
    }
    // Mesh complete: barrier through rank 0.
    let master = streams[0].as_mut().expect("master connection");
    write_frame(master, FrameKind::Ready, &[]).map_err(|e| NetError::io("sending READY", e))?;
    expect_frame(master, FrameKind::Go, &mut body, "master")?;
    let tables = MeshTables {
        host_ids: welcome.host_ids,
        prev_ranks: welcome.prev_ranks,
    };
    Ok((rank, world, streams, tables))
}

/// Splits `host:port`, taking the **last** colon so bracketed IPv6 hosts
/// keep their colons.
fn split_host_port(addr: &str) -> Result<(&str, u16), NetError> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| NetError::Config(format!("master address {addr} has no port")))?;
    let port: u16 = port
        .parse()
        .map_err(|_| NetError::Config(format!("master address {addr} has an invalid port")))?;
    Ok((host, port))
}

/// The rendezvous port for the resize at `generation`, derived
/// deterministically from the previous rendezvous port so every survivor
/// computes the same address without first agreeing on who survived. A
/// *fresh* port rather than the old one because the old master's accepted
/// connections leave `TIME_WAIT` remnants that can make an immediate
/// re-bind fail (std exposes no `SO_REUSEADDR`), and because the old
/// master may be the rank that died.
///
/// `probe` selects a fallback port for the same generation: a derived port
/// can be owned by an unrelated process, in which case every survivor
/// fails the handshake against the foreign listener and advances to the
/// next probe — still deterministically, so they all converge on the same
/// alternate address.
fn resize_port(base: u16, generation: u64, probe: u32) -> u16 {
    // Jump around the ephemeral range in a generation-dependent stride;
    // stays off privileged ports. Probes take a smaller co-prime stride so
    // consecutive probes of one generation never collide with each other
    // or with the next few generations' first probes.
    let span = u64::from(u16::MAX) - 1024;
    let p = (u64::from(base) + generation.wrapping_mul(7919) + u64::from(probe).wrapping_mul(257))
        % span;
    1024 + p as u16
}

/// Binds `addr`, retrying `AddrInUse` with exponential backoff until
/// `deadline`. A probed "free" port is inherently TOCTOU — another process
/// can take it between the probe and this bind — and a restarted master's
/// old port can still be draining `TIME_WAIT` sockets; both resolve with a
/// short wait far more often than not.
fn bind_master_with_retry(addr: &str, deadline: Instant) -> Result<TcpListener, NetError> {
    let mut backoff = NetConfig::CONNECT_BACKOFF_MIN;
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if Instant::now() + backoff >= deadline {
                    return Err(NetError::io(format!("binding master listener {addr}"), e));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(NetConfig::CONNECT_BACKOFF_MAX);
            }
            Err(e) => return Err(NetError::io(format!("binding master listener {addr}"), e)),
        }
    }
}

/// The elected master's side of a resize rendezvous: collect HELLOs on the
/// derived port for the full membership window, enforce quorum, assign
/// dense ranks (self 0, survivors in ascending old-rank order, joiners
/// appended in arrival order), then publish the mesh and barrier.
///
/// Malformed or foreign-generation HELLOs are dropped, not fatal: resize
/// churn legitimately produces stragglers from the old incarnation.
#[allow(clippy::type_complexity)]
fn resize_master(
    cfg: &NetConfig,
    master_old_rank: usize,
    old_world: usize,
    generation: u64,
    addr: &str,
    listener: &TcpListener,
) -> Result<(usize, usize, Vec<Option<TcpStream>>, MeshTables), NetError> {
    let deadline = Instant::now() + cfg.resize_window;
    let mut body = Vec::new();
    let mut pending: Vec<(TcpStream, Hello, IpAddr)> = Vec::new();
    loop {
        let (mut s, peer) = match accept_deadline(listener, deadline, "a resize HELLO") {
            Ok(conn) => conn,
            // The membership window closed; whoever is in is in.
            Err(NetError::Timeout { .. }) => break,
            Err(e) => return Err(e),
        };
        let hello = (|| -> Result<Hello, NetError> {
            set_handshake_deadlines(&s, cfg)?;
            expect_frame(&mut s, FrameKind::Hello, &mut body, "resize worker")?;
            Hello::decode(&body).map_err(|e| NetError::io("decoding resize HELLO", e))
        })();
        match hello {
            Ok(h) if h.generation == generation => {
                // An old-rank claim counts toward quorum and orders the
                // dense re-ranking, so validate it before admitting it: a
                // rank that never existed in the old world, or the elected
                // master's own old rank, is a stray or spoofed claim either
                // way. Keep-first on duplicates: a second claim of the same
                // rank is a straggling retry or an impostor.
                let bogus = h.rank != u32::MAX
                    && (h.rank as usize >= old_world || h.rank as usize == master_old_rank);
                let dup =
                    h.rank != u32::MAX && pending.iter().any(|(_, seen, _)| seen.rank == h.rank);
                if bogus || dup {
                    drop(s);
                } else {
                    pending.push((s, h, peer.ip()));
                }
            }
            Ok(_) | Err(_) => drop(s),
        }
    }
    let survivors = 1 + pending
        .iter()
        .filter(|(_, h, _)| h.rank != u32::MAX)
        .count();
    if survivors * 2 <= old_world {
        return Err(NetError::Protocol(format!(
            "resize quorum failed: {survivors} of {old_world} old ranks present \
             within the {:?} window",
            cfg.resize_window
        )));
    }
    let world = 1 + pending.len();
    // Dense ranks: self 0, survivors by old rank, then joiners by arrival.
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|&i| match pending[i].1.rank {
        u32::MAX => (1, i as u32),
        r => (0, r),
    });
    let mut assigned = vec![0usize; pending.len()];
    for (new_rank, &i) in order.iter().enumerate() {
        assigned[i] = new_rank + 1;
    }
    let (streams, tables) = master_publish_and_barrier(
        addr,
        world,
        generation,
        cfg.host_id,
        Some(master_old_rank as u32),
        pending,
        &assigned,
    )?;
    Ok((0, world, streams, tables))
}

/// A survivor's (or, via [`TcpEndpoint::join_resize`], a fresh joiner's)
/// side of a resize rendezvous: HELLO the elected master at the derived
/// address, presenting the old rank as an identity claim (`None` = no
/// prior identity), and build the mesh the WELCOME dictates.
#[allow(clippy::type_complexity)]
fn resize_worker(
    cfg: &NetConfig,
    old_rank: Option<usize>,
    generation: u64,
    addr: &str,
) -> Result<(usize, usize, Vec<Option<TcpStream>>, MeshTables), NetError> {
    let hello_rank = old_rank.map_or(u32::MAX, |r| r as u32);
    worker_mesh(cfg, addr, hello_rank, generation, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_data_body;
    use crate::loopback::{tcp_loopback, tcp_loopback_with};
    use std::io::Write as _;

    #[test]
    fn world_of_one_needs_no_sockets() {
        let cfg = NetConfig::new(1, 0, "127.0.0.1:0");
        let ep = TcpEndpoint::connect(&cfg).unwrap();
        assert_eq!((ep.rank(), ep.world_size()), (0, 1));
        assert!(matches!(
            ep.send(0, vec![].into()).unwrap_err(),
            CollectiveError::InvalidRank { .. }
        ));
    }

    #[test]
    fn send_recv_roundtrip_preserves_order_and_bits() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                a.send(1, vec![1.0, f32::NAN, -0.0].into()).unwrap();
                a.send(1, vec![2.0].into()).unwrap();
            });
            s.spawn(|| {
                let first = b.recv(0).unwrap().into_payload().to_f32_vec();
                assert_eq!(first.len(), 3);
                assert_eq!(first[0].to_bits(), 1.0f32.to_bits());
                assert!(first[1].is_nan());
                assert_eq!(first[2].to_bits(), (-0.0f32).to_bits());
                assert_eq!(b.recv(0).unwrap(), vec![2.0]);
            });
        });
    }

    #[test]
    fn recv_timeout_surfaces_instead_of_hanging() {
        let eps = tcp_loopback(2).unwrap();
        assert!(eps[0].set_recv_timeout(Some(Duration::from_millis(50))));
        let err = eps[0].recv(1).unwrap_err();
        assert!(matches!(err, CollectiveError::Timeout { peer: 1, .. }));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnected() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        drop(eps); // rank 0 shuts down gracefully
        b.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = b.recv(0).unwrap_err();
        assert_eq!(err, CollectiveError::Disconnected { peer: 0 });
        // Sending to the departed peer eventually fails too (the writer
        // thread may still accept a queued frame before noticing).
        let mut saw_error = false;
        for _ in 0..200 {
            if b.send(0, vec![1.0].into()).is_err() {
                saw_error = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_error, "send to a dead peer never failed");
    }

    #[test]
    fn pool_reuses_buffers_across_recv() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![5.0; 8].into()).unwrap();
        let msg = b.recv(0).unwrap();
        let buf = msg.into_payload().into_bytes();
        let cap = buf.capacity();
        b.recycle_buffer(buf);
        let again = b.take_buffer(4);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "pool should hand back the buffer");
    }

    #[test]
    fn narrow_payloads_keep_their_dtype_across_the_socket() {
        use dear_collectives::DType;
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let elems = [1.0f32, -2.5, 0.5, 1024.0];
        a.send(1, Message::new(WireBuf::encode(&elems, DType::Bf16)))
            .unwrap();
        let payload = b.recv(0).unwrap().into_payload();
        assert_eq!(payload.dtype(), DType::Bf16);
        assert_eq!(payload.num_bytes(), 8, "half the f32 wire bytes");
        assert_eq!(payload.to_f32_vec(), elems, "bf16-exact values roundtrip");
    }

    #[test]
    fn stamped_message_is_rejected_at_the_wire_boundary() {
        let eps = tcp_loopback(2).unwrap();
        let msg = Message::from(vec![1.0]).with_deliver_at(Instant::now());
        let err = eps[0].send(1, msg).unwrap_err();
        assert_eq!(err, CollectiveError::LocalStampOnWire);
    }

    #[test]
    fn oversize_send_is_rejected_before_framing() {
        // Boundary arithmetic on the helper (a real boundary payload would
        // be a 1 GiB allocation): the stamp and dtype tag's 9 bytes count
        // against the frame limit, so the largest sendable payload is
        // MAX_FRAME_BYTES − 9 wire bytes.
        let fits = MAX_FRAME_BYTES - DATA_BODY_OVERHEAD;
        assert_eq!(oversize_bytes(fits), None);
        assert_eq!(
            oversize_bytes(fits + 1),
            Some(MAX_FRAME_BYTES as u64 + 1),
            "one byte past the boundary must be flagged"
        );
    }

    #[test]
    fn stats_count_wire_bytes_both_ways() {
        let mut eps = tcp_loopback(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![1.0, 2.0].into()).unwrap();
        let msg = b.recv(0).unwrap();
        assert_eq!(msg.len(), 2);
        // One data frame: 5-byte header + 9-byte stamp/dtype + 2 × 4 payload.
        let expect = FRAME_HEADER_BYTES + DATA_BODY_OVERHEAD as u64 + 8;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let sent = a.stats().iter().map(|s| s.bytes_sent).sum::<u64>();
            let recv = b.stats().iter().map(|s| s.bytes_recv).sum::<u64>();
            if sent >= expect && recv >= expect {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "counters never reached {expect}: sent={sent} recv={recv}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(a.stats()[0].peer, 1);
        assert_eq!(b.stats()[0].peer, 0);
    }

    #[test]
    fn explicit_rank_requests_are_honoured() {
        let eps = tcp_loopback(4).unwrap();
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i);
            assert_eq!(ep.world_size(), 4);
        }
    }

    /// A connected socket pair: `(accepted side, dialling side)`.
    fn raw_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    /// A rank-0, world-2 endpoint whose single peer link is `stream` —
    /// lets tests drive the far side with raw frames.
    fn endpoint_over(stream: TcpStream, cfg: &NetConfig) -> TcpEndpoint {
        TcpEndpoint::from_mesh(0, cfg, vec![None, Some(stream)], MeshTables::pseudo(2)).unwrap()
    }

    #[test]
    fn pool_capacity_decays_after_an_outsized_collective() {
        let pool = BufferPool::with_max(1024);
        // A modest buffer is retained with its capacity intact…
        pool.recycle(Vec::with_capacity(512));
        assert_eq!(pool.high_water_bytes(), 512);
        // …but an outsized one is shrunk on return instead of pinning its
        // high-water allocation in the pool for the rest of the run.
        let mut big = pool.take(64 * 1024);
        big.resize(64 * 1024, 7);
        pool.recycle(big);
        assert!(
            pool.high_water_bytes() <= 1024,
            "pool retained {} bytes past the 1024-byte cap",
            pool.high_water_bytes()
        );
        // Shrunk buffers still serve takes at any size.
        let again = pool.take(64 * 1024);
        assert!(again.capacity() >= 64 * 1024);
    }

    #[test]
    fn torn_data_frame_surfaces_an_error_not_a_hang() {
        // A peer that dies between the frame header and the payload bytes
        // leaves a torn frame on the stream. The reader must end the
        // stream — surfacing a typed Disconnected promptly — rather than
        // blocking forever on the missing bytes.
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = None;
        let ep = endpoint_over(ours, &cfg);
        let mut wire = Vec::new();
        crate::frame::write_data_frame(&mut wire, 0, &WireBuf::from_f32(&[1.0, 2.0])).unwrap();
        let mut s = theirs;
        s.write_all(&wire[..wire.len() - 3]).unwrap();
        drop(s); // die mid-frame
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let start = Instant::now();
        let err = ep.recv(1).unwrap_err();
        assert_eq!(err, CollectiveError::Disconnected { peer: 1 });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "torn frame took {:?} to surface",
            start.elapsed()
        );
    }

    #[test]
    fn corrupt_payload_length_ends_the_stream_with_a_typed_error() {
        // dtype f32 but 6 payload bytes: not whole elements. WireBuf
        // rejects it (the typed WireFormat guard), and the reader treats
        // the stream as corrupt — recv resolves, never hangs.
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = None;
        let ep = endpoint_over(ours, &cfg);
        let mut s = theirs;
        let mut body = vec![0u8; 8]; // generation 0
        body.push(0); // dtype tag: f32
        body.extend_from_slice(&[1, 2, 3, 4, 5, 6]); // 6 bytes: not whole f32s
        write_frame(&mut s, FrameKind::Data, &body).unwrap();
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = ep.recv(1).unwrap_err();
        assert_eq!(err, CollectiveError::Disconnected { peer: 1 });
    }

    #[test]
    fn silent_peer_is_declared_dead_and_aborts_the_endpoint() {
        let (ours, _theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = Some(Duration::from_millis(30));
        cfg.heartbeat_miss_budget = 3;
        let ep = endpoint_over(ours, &cfg);
        // The peer holds its socket open but never sends a byte: well
        // before this 5 s recv deadline, the monitor must declare it dead
        // and fail the recv with Aborted (not Timeout).
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let start = Instant::now();
        let err = ep.recv(1).unwrap_err();
        assert_eq!(err, CollectiveError::Aborted { peer: 1 });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "abort took {:?}, detector did not fire",
            start.elapsed()
        );
        // Sends fail fast with the same verdict once the teardown lands.
        let mut saw_abort = false;
        for _ in 0..200 {
            if let Err(e) = ep.send(1, vec![1.0].into()) {
                assert_eq!(e, CollectiveError::Aborted { peer: 1 });
                saw_abort = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_abort, "send to a dead peer never surfaced the abort");
    }

    #[test]
    fn heartbeats_keep_an_idle_peer_alive_until_it_departs_gracefully() {
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.heartbeat_interval = Some(Duration::from_millis(30));
        cfg.heartbeat_miss_budget = 3;
        let ep = endpoint_over(ours, &cfg);
        let pulse = std::thread::spawn(move || {
            let mut s = theirs;
            // Idle for data but alive: heartbeats alone must hold off the
            // detector for far longer than the 90 ms miss allowance.
            for _ in 0..15 {
                write_frame(&mut s, FrameKind::Heartbeat, &encode_generation(0)).unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
            write_frame(&mut s, FrameKind::Shutdown, &[]).unwrap();
        });
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = ep.recv(1).unwrap_err();
        // Disconnected, not Aborted: a graceful departure is not a failure.
        assert_eq!(err, CollectiveError::Disconnected { peer: 1 });
        pulse.join().unwrap();
    }

    #[test]
    fn stale_generation_frames_are_rejected_on_the_data_path() {
        let (ours, theirs) = raw_pair();
        let mut cfg = NetConfig::new(2, 0, "127.0.0.1:0");
        cfg.generation = 5;
        cfg.heartbeat_interval = None;
        let ep = endpoint_over(ours, &cfg);
        let mut s = theirs;
        let mut body = Vec::new();
        encode_data_body(4, &WireBuf::from_f32(&[1.0, 2.0]), &mut body);
        write_frame(&mut s, FrameKind::Data, &body).unwrap();
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let err = ep.recv(1).unwrap_err();
        assert_eq!(
            err,
            CollectiveError::StaleGeneration {
                peer: 1,
                expected: 5,
                actual: 4
            }
        );
    }

    #[test]
    fn rendezvous_rejects_a_worker_from_another_generation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut mcfg = NetConfig::new(2, 0, addr.clone());
        mcfg.generation = 1;
        mcfg.handshake_timeout = Duration::from_millis(400);
        let master =
            std::thread::spawn(move || TcpEndpoint::connect_with_listener(&mcfg, listener));
        let mut wcfg = NetConfig::new(2, 1, addr);
        wcfg.generation = 0;
        wcfg.handshake_timeout = Duration::from_secs(2);
        // The master refuses the stale HELLO (dropping the connection) and
        // then times out with nobody left to welcome; the worker sees its
        // rendezvous link die instead of a WELCOME.
        assert!(TcpEndpoint::connect(&wcfg).is_err());
        assert!(master.join().unwrap().is_err());
    }

    #[test]
    fn connect_retry_times_out_against_nobody() {
        let mut cfg = NetConfig::new(2, 1, "127.0.0.1:9"); // discard port
        cfg.connect_timeout = Duration::from_millis(100);
        let err = TcpEndpoint::connect(&cfg).unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout { .. } | NetError::Io { .. }
        ));
    }

    #[test]
    fn concurrent_stale_peers_all_keep_their_verdicts() {
        // Satellite-3 regression: two peers from different old generations
        // send stale frames concurrently; the single-slot design used to
        // keep only the first verdict, so the other channel misreported.
        let (ours1, theirs1) = raw_pair();
        let (ours2, theirs2) = raw_pair();
        let mut cfg = NetConfig::new(3, 0, "127.0.0.1:0");
        cfg.generation = 7;
        cfg.heartbeat_interval = None;
        let ep = TcpEndpoint::from_mesh(
            0,
            &cfg,
            vec![None, Some(ours1), Some(ours2)],
            MeshTables::pseudo(3),
        )
        .unwrap();
        let mut body = Vec::new();
        encode_data_body(3, &WireBuf::from_f32(&[1.0]), &mut body);
        let mut s1 = theirs1;
        write_frame(&mut s1, FrameKind::Data, &body).unwrap();
        body.clear();
        encode_data_body(5, &WireBuf::from_f32(&[2.0]), &mut body);
        let mut s2 = theirs2;
        write_frame(&mut s2, FrameKind::Data, &body).unwrap();
        ep.set_recv_timeout(Some(Duration::from_secs(5)));
        let e1 = ep.recv(1).unwrap_err();
        let e2 = ep.recv(2).unwrap_err();
        assert_eq!(
            e1,
            CollectiveError::StaleGeneration {
                peer: 1,
                expected: 7,
                actual: 3
            }
        );
        assert_eq!(
            e2,
            CollectiveError::StaleGeneration {
                peer: 2,
                expected: 7,
                actual: 5
            }
        );
        assert_eq!(ep.stale_peers(), vec![(1, 3), (2, 5)]);
    }

    #[test]
    fn resize_port_is_deterministic_and_unprivileged() {
        for g in 1..50u64 {
            for probe in 0..NetConfig::RESIZE_PORT_PROBES {
                let p = resize_port(29400, g, probe);
                assert!(p >= 1024);
                assert_eq!(p, resize_port(29400, g, probe));
            }
        }
        assert_ne!(
            resize_port(29400, 1, 0),
            resize_port(29400, 2, 0),
            "consecutive generations must land on different ports"
        );
        // Probes of one generation are distinct from each other and from
        // the next generation's first derivation — a foreign owner at
        // probe k must not send survivors to a port another rendezvous
        // would also pick.
        let mut ports: Vec<u16> = (0..NetConfig::RESIZE_PORT_PROBES)
            .map(|probe| resize_port(29400, 1, probe))
            .collect();
        ports.push(resize_port(29400, 2, 0));
        let mut dedup = ports.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ports.len(), "derived ports collide: {ports:?}");
    }

    #[test]
    fn resize_master_rejects_bogus_old_rank_claims() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = NetConfig::new(4, 1, addr.clone())
            .with_connect_timeout(Duration::from_secs(5))
            .with_resize_window(Duration::from_millis(600));
        // The elected master's old rank is 1, old world 4.
        let master = std::thread::spawn({
            let cfg = cfg.clone();
            let addr = addr.clone();
            move || resize_master(&cfg, 1, 4, 1, &addr, &listener)
        });
        let hello = |claim: u32| {
            let mut s = TcpStream::connect(addr.as_str()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let h = Hello {
                rank: claim,
                port: 1,
                generation: 1,
                host_id: NetConfig::UNKNOWN_HOST,
                host: String::new(),
            };
            write_frame(&mut s, FrameKind::Hello, &h.encode()).unwrap();
            s
        };
        // Claims that cannot be real survivors: rank 7 never existed in a
        // world of 4, and rank 1 is the elected master's own old rank.
        let mut ghost = hello(7);
        let mut shadow = hello(1);
        // Two genuine survivors, old ranks 0 and 3.
        let mut a = hello(0);
        let mut b = hello(3);
        let mut body = Vec::new();
        // Bogus claimants are dropped (EOF), never welcomed.
        assert!(
            read_frame(&mut ghost, &mut body).is_err(),
            "a claim outside the old world must be dropped"
        );
        assert!(
            read_frame(&mut shadow, &mut body).is_err(),
            "a claim of the master's own old rank must be dropped"
        );
        // Real survivors get dense ranks in old-rank order and a world
        // count the bogus claims did not inflate.
        for (s, want) in [(&mut a, 1u32), (&mut b, 2u32)] {
            assert_eq!(read_frame(s, &mut body).unwrap(), FrameKind::Welcome);
            let w = Welcome::decode(&body).unwrap();
            assert_eq!(w.world, 3, "bogus claims must not count toward the world");
            assert_eq!(w.rank, want, "dense old-rank order among real survivors");
            assert_eq!(
                w.prev_ranks,
                vec![1, 0, 3],
                "the WELCOME maps every new rank back to its old rank"
            );
            write_frame(s, FrameKind::Ready, &[]).unwrap();
        }
        for s in [&mut a, &mut b] {
            assert_eq!(read_frame(s, &mut body).unwrap(), FrameKind::Go);
        }
        let (rank, world, streams, tables) = master.join().unwrap().unwrap();
        assert_eq!((rank, world), (0, 3));
        assert_eq!(streams.iter().flatten().count(), 2);
        assert_eq!(tables.prev_ranks, vec![1, 0, 3]);
    }

    #[test]
    fn resize_advances_past_a_foreign_port_owner() {
        // Handshake deadline (1 s) must out-wait the membership window
        // (500 ms) for workers parked on the real rendezvous, while the
        // stall against the foreign listener is bounded by that same
        // handshake deadline.
        let mut eps = tcp_loopback_with(3, |cfg| {
            cfg.with_connect_timeout(Duration::from_secs(1))
                .with_resize_window(Duration::from_millis(500))
        })
        .unwrap();
        let (_, base_port) = split_host_port(&eps[0].cfg.master_addr).unwrap();
        // An unrelated process owns the first derived port: it accepts
        // connections (listen backlog) but never speaks our protocol, so
        // every survivor fails the probe-0 handshake and must advance to
        // probe 1. If the bind fails because some other process on this
        // machine really owns the port, the scenario is the same.
        let foreign = TcpListener::bind(("127.0.0.1", resize_port(base_port, 1, 0)));
        let victim = eps.remove(2);
        drop(victim);
        let changes: Vec<WorldChange> = std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| s.spawn(move || ep.reconfigure(None).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        drop(foreign);
        let mut new_ranks: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
        new_ranks.sort_unstable();
        assert_eq!(new_ranks, vec![0, 1]);
        for (ep, change) in eps.iter().zip(&changes) {
            assert_eq!(change.new_world, 2);
            assert_eq!(ep.world_size(), 2);
            assert_eq!(ep.generation(), 1);
            // The rendezvous formed at the second derivation.
            let (_, port) = split_host_port(&ep.cfg.master_addr).unwrap();
            assert_eq!(port, resize_port(base_port, 1, 1));
        }
        // The resized world still runs a correct all-reduce.
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 16];
                    dear_collectives::ring_all_reduce(
                        ep,
                        &mut data,
                        dear_collectives::ReduceOp::Sum,
                    )
                    .unwrap();
                    assert_eq!(data, vec![3.0; 16]);
                });
            }
        });
    }

    #[test]
    fn off_host_master_addr_joins_as_worker_instead_of_failing_bind() {
        // On a multi-host deployment, the derived resize address lives on
        // the master host: a survivor elsewhere gets `AddrNotAvailable`
        // from the bind and must dial in as a worker, not fail the resize
        // outright. With the master host dead (as here — TEST-NET never
        // answers), every probe's worker dial fails and the reconfigure
        // error reflects the failed *connect*, leaving the supervised
        // restart as the fallback.
        let cfg = NetConfig::new(1, 0, "203.0.113.1:29500")
            .with_connect_timeout(Duration::from_millis(200))
            .with_resize_window(Duration::from_millis(100));
        let mut ep = TcpEndpoint::connect(&cfg).unwrap();
        let err = ep.reconfigure(None).unwrap_err();
        let CollectiveError::Reconfigure { reason } = err else {
            panic!("expected a Reconfigure error, got {err:?}");
        };
        // Depending on the network, the dead host manifests as a connect
        // timeout or a reset during the handshake — both are worker-side
        // failures. What must NOT surface is the local bind error.
        assert!(
            !reason.contains("binding resize listener"),
            "an unbindable derived host must degrade to a worker dial, got: {reason}"
        );
        assert!(
            reason.contains("connecting to") || reason.contains("master"),
            "the failure must come from the worker dial/handshake, got: {reason}"
        );
    }

    #[test]
    fn shrink_reconfigures_survivors_to_a_dense_world() {
        let mut eps = tcp_loopback_with(4, |cfg| {
            cfg.with_connect_timeout(Duration::from_secs(5))
                .with_resize_window(Duration::from_millis(800))
        })
        .unwrap();
        // Rank 2 dies abruptly (drop closes its sockets).
        let victim = eps.remove(2);
        drop(victim);
        let changes: Vec<WorldChange> = std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| s.spawn(move || ep.reconfigure(None).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Dense ranks 0..3, each exactly once; world 3 everywhere; old
        // ranks preserved in the change records.
        let mut new_ranks: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
        new_ranks.sort_unstable();
        assert_eq!(new_ranks, vec![0, 1, 2]);
        for (ep, change) in eps.iter().zip(&changes) {
            assert_eq!(change.old_world, 4);
            assert_eq!(change.new_world, 3);
            assert_eq!(change.generation, 1);
            assert_eq!(ep.rank(), change.new_rank);
            assert_eq!(ep.world_size(), 3);
            assert_eq!(ep.generation(), 1);
        }
        // Survivors other than the elected master keep their relative
        // old-rank order at ranks 1..: the two non-master survivors must
        // be ordered by their old ranks.
        let mut non_master: Vec<(usize, usize)> = changes
            .iter()
            .filter(|c| c.new_rank != 0)
            .map(|c| (c.new_rank, c.old_rank))
            .collect();
        non_master.sort_unstable();
        let old_order: Vec<usize> = non_master.iter().map(|&(_, o)| o).collect();
        let mut sorted = old_order.clone();
        sorted.sort_unstable();
        assert_eq!(old_order, sorted, "old-rank order preserved at ranks 1..");
        // The resized world runs a correct all-reduce.
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 16];
                    dear_collectives::ring_all_reduce(
                        ep,
                        &mut data,
                        dear_collectives::ReduceOp::Sum,
                    )
                    .unwrap();
                    assert_eq!(data, vec![6.0; 16]); // 1+2+3
                });
            }
        });
    }

    #[test]
    fn grow_admits_a_fresh_joiner_at_the_next_rank() {
        // Build a 2-rank world by hand so the test knows the original
        // master address the joiner derives the resize address from.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let tweak = |cfg: NetConfig| {
            cfg.with_connect_timeout(Duration::from_secs(5))
                .with_resize_window(Duration::from_millis(800))
        };
        let cfg0 = tweak(NetConfig::new(2, 0, addr.clone()));
        let cfg1 = tweak(NetConfig::new(2, 1, addr.clone()));
        let (mut ep0, mut ep1) = std::thread::scope(|s| {
            let w = s.spawn(move || TcpEndpoint::connect(&cfg1).unwrap());
            let ep0 = TcpEndpoint::connect_with_listener(&cfg0, listener).unwrap();
            (ep0, w.join().unwrap())
        });
        let jcfg = tweak(NetConfig::new(2, 1, addr));
        let (c0, c1, joiner) = std::thread::scope(|s| {
            let h0 = s.spawn(|| ep0.reconfigure(None).unwrap());
            let h1 = s.spawn(|| ep1.reconfigure(None).unwrap());
            let hj = s.spawn(move || TcpEndpoint::join_resize(&jcfg, 1).unwrap());
            (h0.join().unwrap(), h1.join().unwrap(), hj.join().unwrap())
        });
        assert_eq!(c0.new_world, 3);
        assert_eq!(c1.new_world, 3);
        assert_eq!(joiner.world_size(), 3);
        assert_eq!(joiner.rank(), 2, "fresh joiners are appended last");
        assert_eq!(joiner.generation(), 1);
        let eps = [&ep0, &ep1, &joiner];
        std::thread::scope(|s| {
            for ep in eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 8];
                    dear_collectives::ring_all_reduce(
                        ep,
                        &mut data,
                        dear_collectives::ReduceOp::Sum,
                    )
                    .unwrap();
                    assert_eq!(data, vec![6.0; 8]);
                });
            }
        });
    }

    #[test]
    fn resize_without_quorum_fails_with_a_typed_error() {
        let mut eps = tcp_loopback_with(4, |cfg| {
            cfg.with_connect_timeout(Duration::from_secs(5))
                .with_resize_window(Duration::from_millis(300))
        })
        .unwrap();
        // Three of four ranks die: one survivor is not a majority.
        let survivor = eps.remove(1);
        drop(eps);
        let mut survivor = survivor;
        let err = survivor.reconfigure(None).unwrap_err();
        assert!(
            matches!(err, CollectiveError::Reconfigure { ref reason } if reason.contains("quorum")),
            "{err}"
        );
    }
}

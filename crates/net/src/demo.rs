//! The `dear-launch --demo` worker: a small but complete DeAR training run
//! over a real [`TcpEndpoint`], used by the multi-process smoke tests and
//! as a copy-paste template for real deployments.

use dear_collectives::{naive_all_reduce, ReduceOp, Transport};
use dear_core::fusion::RandomSearch;
use dear_core::trace::{self, OverlapSummary};
use dear_core::tuning::OnlineTuning;
use dear_core::{run_worker, CheckpointStore, ParallelismStrategy, TrainCheckpoint, TrainConfig};
use dear_minidnn::{softmax_cross_entropy, BlobDataset, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{NetConfig, NetError};
use crate::endpoint::TcpEndpoint;
use crate::shm::{ShmEndpoint, ShmFabric};
use crate::tiered::TieredEndpoint;

/// What one demo worker produced. `eval_loss` and `params_hash` are
/// computed after `synchronize`, on a batch every rank derives identically,
/// so they are **bit-identical across ranks** — the launcher smoke test
/// asserts exactly that.
#[derive(Debug, Clone, PartialEq)]
pub struct DemoSummary {
    /// This worker's rank.
    pub rank: usize,
    /// World size.
    pub world: usize,
    /// Cross-entropy on a fixed held-out batch after training.
    pub eval_loss: f32,
    /// Order-sensitive FNV-style hash of the final parameter bits.
    pub params_hash: u64,
    /// The parallelism strategy the run trained under.
    pub strategy: ParallelismStrategy,
    /// Bytes of optimizer state resident on this rank's comm thread at the
    /// end of the run — under `zero1`/`zero2` roughly `1/world` of the DDP
    /// figure, which the strategy smoke test asserts.
    pub optim_bytes: usize,
}

impl DemoSummary {
    /// The stable one-line form the launcher smoke test parses. The
    /// `strategy`/`optim_bytes` fields ride at the end so older token-wise
    /// parsers keep working; `optim_bytes` is per-rank and may legitimately
    /// differ across ranks (chunk rounding), so cross-rank equality checks
    /// must compare `eval_loss`/`params_hash`, not whole lines.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "dear-demo rank={} world={} eval_loss={:.6} params_hash={:016x} \
             strategy={} optim_bytes={}",
            self.rank,
            self.world,
            self.eval_loss,
            self.params_hash,
            self.strategy,
            self.optim_bytes
        )
    }
}

/// Hashes parameter bits order-sensitively (FNV-1a over the `f32` bits).
#[must_use]
pub fn hash_params(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in params {
        for b in p.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

/// Which retained boundary snapshot matches the agreed resume step after
/// an in-place resize.
#[derive(Debug, PartialEq, Eq)]
enum Rollback {
    /// The latest boundary snapshot is the agreed one (the common case).
    Current,
    /// This rank raced one boundary ahead: a ring collective completed
    /// here but failed on a peer that stayed a boundary behind, so the
    /// *previous* snapshot is the one every survivor holds.
    Previous,
}

/// Picks the snapshot whose step equals `agreed`, or `None` when neither
/// matches — more than one boundary of skew, which the boundary sync (a
/// collective itself) makes impossible unless state was corrupted; the
/// caller must then fall back to a supervised restart rather than resume
/// mismatched state under an agreed step counter.
fn choose_rollback(agreed: u64, snap_step: u64, prev_step: u64) -> Option<Rollback> {
    if agreed == snap_step {
        Some(Rollback::Current)
    } else if agreed == prev_step {
        Some(Rollback::Previous)
    } else {
        None
    }
}

fn demo_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Linear::new(6, 16, &mut rng))
        .push(Relu::new())
        .push(Linear::new(16, 8, &mut rng))
        .push(Relu::new())
        .push(Linear::new(8, 3, &mut rng))
}

/// Joins the cluster described by `cfg` and trains the demo network for
/// `steps` data-parallel steps. All behaviour is driven by the typed
/// config — build one with [`NetConfig::from_env`] (the crate's only env
/// reader) or construct it explicitly; see [`DemoOptions`](crate::config::DemoOptions) for the
/// demo-specific knobs.
///
/// With [`ckpt_dir`](crate::config::DemoOptions::ckpt_dir) set, every rank writes an atomic,
/// checksummed checkpoint every [`ckpt_every`](crate::config::DemoOptions::ckpt_every) steps and, on
/// startup, the world agrees on the newest step *all* ranks have a valid
/// checkpoint for (a `Min` all-reduce over each rank's latest) and resumes
/// from it bit-identically — this is what makes a supervised restart
/// converge to the same final parameters as an uninterrupted run.
///
/// For failure-propagation tests, [`exit_rank`](crate::config::DemoOptions::exit_rank) /
/// [`exit_at_step`](crate::config::DemoOptions::exit_at_step) make exactly one rank die abruptly
/// (`process::exit`, indistinguishable from a kill at the network layer)
/// mid-training; the surviving ranks must then error out of their
/// collectives instead of hanging. The injection only fires when the
/// world generation equals [`exit_gen`](crate::config::DemoOptions::exit_gen), so under an elastic
/// launcher the restarted world survives.
///
/// [`NetConfig::wire`] selects the data-path precision: with `bf16`/`f16`
/// the gradients and parameters cross the socket at half the bytes,
/// accumulated in f32 at every hop; the summary stays bit-identical
/// across ranks either way.
///
/// # Errors
///
/// Returns [`NetError`] when rendezvous fails or the checkpoint directory
/// is unusable.
///
/// With [`NetConfig::elastic_resize`] set, a mid-training collective
/// failure does **not** kill the survivors: each one prints a
/// `resizing in place` marker, re-runs rendezvous at the next generation
/// via [`Transport::reconfigure`], agrees on the last common snapshot
/// boundary (a `Min` all-reduce), rolls parameters and optimizer shards
/// back to it, repartitions the reduce-scattered optimizer state over the
/// new world, and keeps training — no restart, no checkpoint reload.
/// Each rank retains its last *two* boundary snapshots: a peer death
/// mid-collective can let the boundary sync complete on some survivors
/// and fail on others, leaving one rank a boundary ahead — it restores
/// the previous snapshot (the one matching the agreed step) instead of
/// silently resuming newer state.
/// Every rank prints a `params_hash` line at each snapshot boundary
/// (every [`ckpt_every`](crate::config::DemoOptions::ckpt_every) steps), so an external observer can check
/// that survivors stay bit-identical through the resize.
///
/// # Panics
///
/// Panics (taking the process down with a non-zero status) when a
/// collective fails mid-training and elastic resize is off — e.g. a peer
/// died and the configured recv deadline or a disconnect surfaced — when
/// an attempted in-place resize itself fails (e.g. quorum loss), or when
/// a checkpoint write fails.
pub fn run_demo_worker(cfg: &NetConfig, steps: u64) -> Result<DemoSummary, NetError> {
    run_demo_on(TcpEndpoint::connect(cfg)?, cfg, steps)
}

/// One host process of a two-tier demo world: joins as `ranks_per_host`
/// rank threads whose intra-host traffic rides a shared [`ShmFabric`]
/// while inter-host traffic rides TCP ([`TieredEndpoint`]).
///
/// The process's `RANK`/`WORLD_SIZE` environment (already parsed into
/// `base`) is reinterpreted at the *host* granularity: `base.rank` is the
/// host index `h` out of `base.world` hosts, and the global world becomes
/// `base.world * ranks_per_host` with this process owning global ranks
/// `h*k .. (h+1)*k`. Every rank tags itself with `host_id = h`, so the
/// rendezvous host table — and therefore tier routing — reflects real
/// process co-location, not a loopback fiction. This is what
/// `dear-launch --hosts H --demo` re-enters.
///
/// # Errors
///
/// Returns [`NetError`] when rendezvous fails, the host/rank geometry is
/// inconsistent, or any rank thread's demo run fails.
///
/// # Panics
///
/// Panics when a rank thread panics (e.g. a collective failed
/// mid-training; elastic resize is not supported under `--hosts`).
pub fn run_demo_host(
    base: &NetConfig,
    steps: u64,
    ranks_per_host: usize,
) -> Result<Vec<DemoSummary>, NetError> {
    let k = ranks_per_host;
    if k == 0 {
        return Err(NetError::Config("ranks_per_host must be >= 1".into()));
    }
    let hosts = base.world;
    let host = base
        .rank
        .ok_or_else(|| NetError::Config("host worker needs RANK set".into()))?;
    if host >= hosts {
        return Err(NetError::Config(format!(
            "host index {host} out of range for {hosts} hosts"
        )));
    }
    let world = hosts * k;
    let members: Vec<usize> = (host * k..(host + 1) * k).collect();
    // One shm fabric per process, shared by its rank threads. A single
    // rank per host degenerates to pure TCP — no fabric at all.
    let shm_eps: Vec<Option<ShmEndpoint>> = if k > 1 {
        let mut fab_cfg = base.clone();
        fab_cfg.world = world;
        ShmFabric::with_config(&fab_cfg, &members)
            .into_iter()
            .map(Some)
            .collect()
    } else {
        vec![None]
    };
    let summaries: Vec<Result<DemoSummary, NetError>> = std::thread::scope(|s| {
        let handles: Vec<_> = members
            .iter()
            .zip(shm_eps)
            .map(|(&global, shm)| {
                let mut cfg = base.clone();
                cfg.world = world;
                cfg.rank = Some(global);
                cfg.host_id = Some(host as u64);
                s.spawn(move || {
                    let tcp = TcpEndpoint::connect(&cfg)?;
                    let ep = TieredEndpoint::compose(tcp, shm)?;
                    run_demo_on(ep, &cfg, steps)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("demo rank thread panicked"))
            .collect()
    });
    summaries.into_iter().collect()
}

/// The transport-generic demo body behind [`run_demo_worker`]: everything
/// after the connect — resume agreement, training, elastic recovery,
/// trace dump — only needs the [`Transport`] contract, so tiered
/// (shm + TCP) endpoints drive the identical run.
///
/// # Errors
///
/// Returns [`NetError`] when the checkpoint store is unusable or the
/// resume-step agreement fails; see [`run_demo_worker`] for the full
/// behaviour contract.
///
/// # Panics
///
/// Same panics as [`run_demo_worker`]: a mid-training collective failure
/// with elastic resize off, a failed in-place resize, or a failed
/// checkpoint write.
pub fn run_demo_on<T: Transport + Send + 'static>(
    transport: T,
    cfg: &NetConfig,
    steps: u64,
) -> Result<DemoSummary, NetError> {
    let rank = transport.rank();
    let world = transport.world_size();
    let exit_here = cfg.demo.exit_rank == Some(rank) && cfg.generation == cfg.demo.exit_gen;
    let exit_step = cfg.demo.exit_at_step;
    let ckpt_every = cfg.demo.ckpt_every.max(1);
    let store = match &cfg.demo.ckpt_dir {
        Some(dir) => Some(
            CheckpointStore::new(dir, rank)
                .map_err(|e| NetError::Config(format!("checkpoint store: {e}")))?,
        ),
        None => None,
    };
    // Agree on the resume point before training: each rank offers the step
    // of its newest *valid* checkpoint (−1 = none), and the world takes the
    // minimum, so every rank is guaranteed to hold the chosen one (a rank
    // killed mid-save only ever lags the others, and retention keeps
    // several steps back). −1 anywhere means a fresh start everywhere.
    let (start, resume) = match &store {
        Some(store) => {
            let mine = store.latest_valid();
            let mut offer = [mine.as_ref().map_or(-1.0, |c| c.step as f32)];
            naive_all_reduce(&transport, &mut offer, ReduceOp::Min)
                .map_err(|e| NetError::Protocol(format!("resume-step agreement: {e}")))?;
            if offer[0] < 0.0 {
                (0, None)
            } else {
                let agreed = offer[0] as u64;
                let ckpt = match mine {
                    Some(c) if c.step == agreed => c,
                    _ => TrainCheckpoint::load(&store.path_for(agreed)).map_err(|e| {
                        NetError::Config(format!(
                            "loading agreed checkpoint for step {agreed}: {e}"
                        ))
                    })?,
                };
                eprintln!(
                    "dear-demo rank={rank} resuming from checkpoint at step {agreed} \
                     (generation {})",
                    cfg.generation
                );
                (agreed, Some(ckpt))
            }
        }
        None => (0, None),
    };
    let data = BlobDataset::new(6, 3, 0.4, 99);
    let train_cfg = TrainConfig {
        fusion_buffer: Some(512), // several groups => real pipelining
        ..TrainConfig::default()
    }
    .with_wire(cfg.wire)
    .with_strategy(cfg.strategy.clone());
    let fusion_hint = train_cfg.fusion_buffer.unwrap_or(0) as f64;
    // Optional throughput measurement over BO-style tuning windows
    // (`tune_window` steps per window, 0 = off). Checkpoint saves are
    // bracketed with pause()/resume() so their cost never lands inside a
    // window's observation.
    let tune_window = cfg.demo.tune_window;
    let elastic = cfg.elastic_resize;
    let (eval_loss, params_hash, optim_bytes, rank, world) =
        run_worker(transport, train_cfg, move |handle| {
            let mut net = demo_net(7);
            let mut optim = handle.into_optim(&net);
            let mut rank = rank;
            let mut world = world;
            let mut tuning: Option<OnlineTuning<RandomSearch>> = (tune_window > 0)
                .then(|| OnlineTuning::new(None, tune_window, (8 * world) as f64, fusion_hint));
            if let Some(ckpt) = resume {
                net.set_flat_params(&ckpt.params);
                optim.import_optim_state(ckpt.optim);
            }
            // Rollback anchors for in-place resize: the last TWO boundaries
            // this rank passed. A ring collective can complete on some
            // survivors and fail on others when a peer dies mid-transfer, so
            // one rank may pass the boundary sync (and snapshot step N) while
            // another keeps N − ckpt_every; `agree_min_step` then picks the
            // older step. Retaining the previous boundary lets the rank that
            // raced one boundary ahead restore the snapshot *matching* the
            // agreed step, instead of silently resuming newer parameters under
            // an older step counter and diverging from its peers. More than
            // one boundary of skew is impossible (a boundary sync is itself a
            // collective the lagging rank would have had to complete), so any
            // other mismatch panics into the supervised-restart fallback.
            let mut step = start;
            let mut snap_step = start;
            let mut snap_params = net.flat_params();
            let mut snap_optim = optim.export_optim_state();
            let mut prev_step = snap_step;
            let mut prev_params = snap_params.clone();
            let mut prev_optim = snap_optim.clone();
            macro_rules! recover {
            ($e:expr) => {{
                eprintln!(
                    "dear-demo rank={rank} resizing in place after collective failure: {}",
                    $e
                );
                if let Some(t) = tuning.as_mut() {
                    t.pause();
                }
                let change = optim
                    .resize_world(None)
                    .unwrap_or_else(|err| panic!("in-place resize failed: {err}"));
                rank = change.new_rank;
                world = change.new_world;
                let generation = change.generation;
                let agreed = optim
                    .agree_min_step(snap_step)
                    .unwrap_or_else(|err| panic!("resume-step agreement failed: {err}"));
                match choose_rollback(agreed, snap_step, prev_step) {
                    Some(Rollback::Current) => (),
                    Some(Rollback::Previous) => {
                        eprintln!(
                            "dear-demo rank={rank} raced one boundary ahead (snapshot \
                             {snap_step} > agreed {agreed}); rolling back to the \
                             previous boundary snapshot"
                        );
                        snap_step = prev_step;
                        snap_params = prev_params.clone();
                        snap_optim = prev_optim.clone();
                    }
                    None => panic!(
                        "rank {rank} holds no snapshot for the agreed resume step \
                         {agreed} (latest {snap_step}, previous {prev_step}); \
                         survivors cannot roll back consistently — falling back to \
                         a supervised restart"
                    ),
                }
                net.set_flat_params(&snap_params);
                optim.import_optim_state(snap_optim.clone());
                optim
                    .rebalance_optim_state()
                    .unwrap_or_else(|err| panic!("optimizer-shard rebalance failed: {err}"));
                step = agreed;
                if let Some(t) = tuning.as_mut() {
                    t.resume();
                }
                eprintln!(
                    "dear-demo rank={rank} world={world} generation={generation} \
                     resumed at step {step}"
                );
            }};
        }
            'run: loop {
                while step < steps {
                    // Boundary work at the same steps on every generation
                    // (skipping the one just resumed at): synchronize is
                    // numerics-neutral, so interrupted, resized and
                    // uninterrupted runs produce bit-identical parameters.
                    // The boundary snapshot is the in-memory rollback anchor;
                    // the hash line lets an observer compare ranks.
                    if step > start && step % ckpt_every == 0 {
                        if elastic {
                            if let Err(e) = optim.synchronize(&mut net) {
                                recover!(e);
                                continue;
                            }
                        } else {
                            optim.synchronize_or_panic(&mut net);
                        }
                        prev_step = snap_step;
                        prev_params = std::mem::replace(&mut snap_params, net.flat_params());
                        prev_optim = std::mem::replace(&mut snap_optim, optim.export_optim_state());
                        snap_step = step;
                        // One write_all per line: stderr is unbuffered, so a
                        // multi-fragment eprintln! from 4 ranks sharing the
                        // supervisor's pipe can interleave mid-line and corrupt
                        // the machine-parsed hash lines.
                        let line = format!(
                            "dear-demo rank={rank} world={world} step={step} params_hash={:016x}\n",
                            hash_params(&snap_params)
                        );
                        let _ = std::io::Write::write_all(&mut std::io::stderr(), line.as_bytes());
                        if let Some(store) = &store {
                            let ckpt = TrainCheckpoint {
                                step,
                                params: snap_params.clone(),
                                optim: snap_optim.clone(),
                                rng: Vec::new(),
                                tuner: None,
                            };
                            if let Some(t) = tuning.as_mut() {
                                t.pause();
                            }
                            store
                                .save(&ckpt)
                                .unwrap_or_else(|e| panic!("checkpoint save at step {step}: {e}"));
                            if let Some(t) = tuning.as_mut() {
                                t.resume();
                            }
                        }
                    }
                    if exit_here && step == exit_step {
                        eprintln!("dear-demo rank={rank} dying abruptly at step {step} (injected)");
                        std::process::exit(41);
                    }
                    let (x, labels) = data.shard(step, 8 * world, rank, world);
                    if elastic {
                        if let Err(e) = optim.train_step(&mut net, &x, &labels) {
                            recover!(e);
                            continue;
                        }
                    } else {
                        optim.train_step_or_panic(&mut net, &x, &labels);
                    }
                    if let Some(t) = tuning.as_mut() {
                        if let Some(throughput) = t.on_step() {
                            eprintln!(
                                "dear-tune rank={rank} window={tune_window} \
                             throughput={throughput:.1} samples/s"
                            );
                        }
                    }
                    step += 1;
                }
                if elastic {
                    if let Err(e) = optim.synchronize(&mut net) {
                        recover!(e);
                        continue;
                    }
                } else {
                    optim.synchronize_or_panic(&mut net);
                }
                break 'run;
            }
            // Queried after the final synchronize, so the figure reflects the
            // steady resident state (dense shard under ZeRO, full under DDP).
            let optim_bytes = optim.optim_state_bytes();
            let (x, labels) = data.batch(1_000_000, 64);
            let logits = net.forward(&x);
            let (loss, _) = softmax_cross_entropy(&logits, &labels);
            (
                loss,
                hash_params(&net.flat_params()),
                optim_bytes,
                rank,
                world,
            )
        });
    // End-of-run trace dump: one Perfetto-loadable file per rank plus a
    // greppable overlap summary line on stderr.
    if let Some(prefix) = trace::configured_path() {
        let tl = trace::timeline();
        let path = std::path::PathBuf::from(format!("{}.rank{rank}.json", prefix.display()));
        match trace::write_chrome_trace(&path, &tl) {
            Ok(()) => eprintln!("dear-trace rank={rank} wrote {}", path.display()),
            Err(e) => eprintln!("dear-trace rank={rank} dump failed: {e}"),
        }
        eprintln!(
            "{}",
            OverlapSummary::from_timeline(&tl).to_line(&format!("rank{rank}"))
        );
    }
    Ok(DemoSummary {
        rank,
        world,
        eval_loss,
        params_hash,
        strategy: cfg.strategy.clone(),
        optim_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_hash_is_order_sensitive() {
        let a = hash_params(&[1.0, 2.0]);
        let b = hash_params(&[2.0, 1.0]);
        assert_ne!(a, b);
        assert_eq!(a, hash_params(&[1.0, 2.0]));
    }

    #[test]
    fn rollback_restores_the_snapshot_matching_the_agreed_step() {
        // Common case: every survivor failed before its next boundary.
        assert_eq!(choose_rollback(6, 6, 3), Some(Rollback::Current));
        // A ring collective completed on this rank but failed on a peer:
        // this rank snapshotted one boundary ahead of the agreed step and
        // must restore the previous snapshot, not resume newer parameters
        // under the older step counter.
        assert_eq!(choose_rollback(3, 6, 3), Some(Rollback::Previous));
        // More than one boundary of skew cannot be rolled back.
        assert_eq!(choose_rollback(0, 6, 3), None);
        // Fresh start: both anchors sit at the start step.
        assert_eq!(choose_rollback(0, 0, 0), Some(Rollback::Current));
    }

    #[test]
    fn summary_line_is_parseable() {
        let s = DemoSummary {
            rank: 2,
            world: 4,
            eval_loss: 0.25,
            params_hash: 0xdead_beef,
            strategy: ParallelismStrategy::Zero2,
            optim_bytes: 1234,
        };
        let line = s.to_line();
        assert!(line.contains("rank=2"));
        assert!(line.contains("params_hash=00000000deadbeef"));
        assert!(line.contains("strategy=zero2"));
        assert!(line.contains("optim_bytes=1234"));
    }
}

//! `dear-launch` — spawn and supervise a multi-process DeAR world.
//!
//! ```text
//! dear-launch --world 4 -- ./my-worker --flag     # run any worker command
//! dear-launch --world 4 --demo --steps 30         # built-in training demo
//! dear-launch --world 4 --demo --max-restarts 3 \
//!     --ckpt-dir /tmp/ckpt --chaos 2              # elastic + fault injection
//! ```
//!
//! Every worker is started with `RANK`, `WORLD_SIZE`, `MASTER_ADDR` and
//! `MASTER_PORT` set (the `torchrun` convention); workers build a
//! `TcpEndpoint` from that environment (`NetConfig::from_env`). The first
//! worker to fail gets the rest killed and `dear-launch` exits non-zero.

use std::process::ExitCode;
use std::time::Duration;

use dear_net::{
    launch_world, launch_world_elastic, run_demo_host, run_demo_worker, ChaosPlan, LaunchOptions,
    NetConfig, NetError, RestartPolicy, WorldOutcome,
};

const USAGE: &str = "\
usage: dear-launch --world N [options] -- <worker command...>
       dear-launch --world N [options] --demo

options:
  --world N            total number of ranks (required)
  --hosts H            demo only: split the N ranks over H host
                       processes of N/H rank-threads each; intra-host
                       traffic rides lock-free shared-memory rings and
                       inter-host traffic rides TCP (a TieredEndpoint
                       per rank, host_id = the process's host index);
                       N must divide evenly by H, and the elastic /
                       chaos flags are not supported with --hosts
  --master-addr HOST   rendezvous host (default 127.0.0.1)
  --master-port PORT   rendezvous port (default: pick a free port)
  --timeout-secs T     kill everything after T seconds
  --demo               run the built-in DeAR training demo as the worker
  --steps S            demo training steps (default 30)
  --trace PATH         record per-rank Chrome traces (sets DEAR_TRACE;
                       each rank writes PATH.rank<R>.json, loadable in
                       ui.perfetto.dev, plus an overlap summary on stderr)
  --tune-window K      measure throughput over K-step BO windows in the
                       demo (sets DEAR_TUNE_WINDOW)
  --wire DTYPE         data-path wire precision: f32 (default), bf16 or
                       f16 (sets DEAR_WIRE_DTYPE; gradients cross the
                       socket at the narrow width, accumulated in f32)
  --strategy NAME      parallelism strategy: ddp (default), zero1 or
                       zero2 (sets DEAR_STRATEGY; zero1 shards the
                       optimizer state across ranks on the decoupled
                       pipeline, zero2 additionally keeps only the owned
                       parameter shard resident between reduce-scatter
                       and all-gather — same losses bit-for-bit on the
                       f32 wire, ~1/world the optimizer memory per rank)
  --pin-comm CORE      pin every rank's comm threads (TCP reader/writer)
                       to CPU core CORE (sets DEAR_PIN_COMM; best effort,
                       silently unpinned where the OS refuses)

elastic options (any of these selects the supervised-restart path):
  --elastic-resize     survive peer loss by resizing in place: rank
                       deaths are tolerated by the supervisor and the
                       surviving workers re-rendezvous at the next
                       generation and keep training (sets
                       DEAR_ELASTIC_RESIZE=1); restart is the fallback
  --max-restarts R     relaunch a failed world up to R times (default 0)
  --backoff-ms MS      first restart delay, doubling per failure (default 250)
  --ckpt-dir PATH      workers checkpoint here (sets DEAR_CKPT_DIR)
  --ckpt-every K       checkpoint every K steps (sets DEAR_CKPT_EVERY)
  --chaos N            inject N seeded kill/stall faults while supervising
  --chaos-seed S       chaos plan seed (default 42)
  --chaos-window-ms W  spread the faults over the first W ms (default 3000)
";

struct Cli {
    opts: LaunchOptions,
    demo: bool,
    hosts: Option<usize>,
    steps: u64,
    command: Vec<String>,
    elastic: bool,
    policy: RestartPolicy,
    chaos_count: usize,
    chaos_seed: u64,
    chaos_window: Duration,
}

fn parse_cli(mut args: Vec<String>) -> Result<Cli, String> {
    let mut world = None;
    let mut opts = LaunchOptions::new(0);
    let mut demo = false;
    let mut hosts = None;
    let mut steps = 30u64;
    let mut command = Vec::new();
    let mut elastic = false;
    let mut policy = RestartPolicy::new(0);
    let mut chaos_count = 0usize;
    let mut chaos_seed = 42u64;
    let mut chaos_window = Duration::from_millis(3000);
    let mut i = 0;
    let take_value = |args: &Vec<String>, i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--world" => {
                let v = take_value(&args, &mut i, "--world")?;
                world = Some(v.parse().map_err(|_| format!("bad --world {v}"))?);
            }
            "--master-addr" => opts.master_host = take_value(&args, &mut i, "--master-addr")?,
            "--master-port" => {
                let v = take_value(&args, &mut i, "--master-port")?;
                opts.master_port = Some(v.parse().map_err(|_| format!("bad --master-port {v}"))?);
            }
            "--timeout-secs" => {
                let v = take_value(&args, &mut i, "--timeout-secs")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad --timeout-secs {v}"))?;
                opts.timeout = Some(Duration::from_secs(secs));
            }
            "--demo" => demo = true,
            "--hosts" => {
                let v = take_value(&args, &mut i, "--hosts")?;
                let h: usize = v.parse().map_err(|_| format!("bad --hosts {v}"))?;
                if h == 0 {
                    return Err("--hosts must be >= 1".to_string());
                }
                hosts = Some(h);
            }
            "--steps" => {
                let v = take_value(&args, &mut i, "--steps")?;
                steps = v.parse().map_err(|_| format!("bad --steps {v}"))?;
            }
            "--elastic-resize" => {
                opts.env
                    .push(("DEAR_ELASTIC_RESIZE".to_string(), "1".to_string()));
                opts.tolerate_departures = true;
            }
            "--max-restarts" => {
                let v = take_value(&args, &mut i, "--max-restarts")?;
                policy.max_restarts = v.parse().map_err(|_| format!("bad --max-restarts {v}"))?;
                elastic = true;
            }
            "--backoff-ms" => {
                let v = take_value(&args, &mut i, "--backoff-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --backoff-ms {v}"))?;
                policy.backoff = Duration::from_millis(ms);
                elastic = true;
            }
            "--trace" => {
                let v = take_value(&args, &mut i, "--trace")?;
                if v.is_empty() {
                    return Err("--trace needs a non-empty path".to_string());
                }
                opts.env.push(("DEAR_TRACE".to_string(), v));
            }
            "--tune-window" => {
                let v = take_value(&args, &mut i, "--tune-window")?;
                let _: u64 = v.parse().map_err(|_| format!("bad --tune-window {v}"))?;
                opts.env.push(("DEAR_TUNE_WINDOW".to_string(), v));
            }
            "--wire" => {
                let v = take_value(&args, &mut i, "--wire")?;
                match dear_collectives::DType::parse(&v) {
                    Some(d) if d.is_numeric() => {}
                    _ => return Err(format!("bad --wire {v} (want f32, bf16 or f16)")),
                }
                opts.env.push(("DEAR_WIRE_DTYPE".to_string(), v));
            }
            "--strategy" => {
                let v = take_value(&args, &mut i, "--strategy")?;
                // Validate at parse time so a typo dies here with the typed
                // message instead of 4 ranks failing rendezvous later.
                let parsed = v
                    .parse::<dear_core::ParallelismStrategy>()
                    .map_err(|e| format!("bad --strategy {v}: {e}"))?;
                opts.env
                    .push(("DEAR_STRATEGY".to_string(), parsed.as_str().to_string()));
            }
            "--pin-comm" => {
                let v = take_value(&args, &mut i, "--pin-comm")?;
                let _: usize = v.parse().map_err(|_| format!("bad --pin-comm {v}"))?;
                opts.env.push(("DEAR_PIN_COMM".to_string(), v));
            }
            "--ckpt-dir" => {
                let v = take_value(&args, &mut i, "--ckpt-dir")?;
                opts.env.push(("DEAR_CKPT_DIR".to_string(), v));
            }
            "--ckpt-every" => {
                let v = take_value(&args, &mut i, "--ckpt-every")?;
                let _: u64 = v.parse().map_err(|_| format!("bad --ckpt-every {v}"))?;
                opts.env.push(("DEAR_CKPT_EVERY".to_string(), v));
            }
            "--chaos" => {
                let v = take_value(&args, &mut i, "--chaos")?;
                chaos_count = v.parse().map_err(|_| format!("bad --chaos {v}"))?;
                elastic = true;
            }
            "--chaos-seed" => {
                let v = take_value(&args, &mut i, "--chaos-seed")?;
                chaos_seed = v.parse().map_err(|_| format!("bad --chaos-seed {v}"))?;
            }
            "--chaos-window-ms" => {
                let v = take_value(&args, &mut i, "--chaos-window-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --chaos-window-ms {v}"))?;
                chaos_window = Duration::from_millis(ms);
            }
            "--" => {
                command = args.split_off(i + 1);
                break;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    let Some(world) = world else {
        return Err("--world is required".to_string());
    };
    opts.world = world;
    if demo != command.is_empty() {
        return Err("pass exactly one of --demo or `-- <worker command>`".to_string());
    }
    if let Some(h) = hosts {
        if !demo {
            return Err("--hosts only works with --demo".to_string());
        }
        if world % h != 0 {
            return Err(format!("--world {world} must divide evenly by --hosts {h}"));
        }
        if elastic || opts.tolerate_departures {
            return Err(
                "--hosts cannot be combined with the elastic / chaos flags (rank \
                 threads share a process, so per-rank kills and restarts do not \
                 apply)"
                    .to_string(),
            );
        }
    }
    Ok(Cli {
        opts,
        demo,
        hosts,
        steps,
        command,
        elastic,
        policy,
        chaos_count,
        chaos_seed,
        chaos_window,
    })
}

fn run() -> Result<(), NetError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Internal re-entry: `dear-launch` relaunches itself as the demo
    // worker, so `--demo` needs no separate worker binary.
    if args.first().is_some_and(|a| a == "--demo-worker") {
        let steps: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
        let cfg = NetConfig::from_env()?;
        dear_core::trace::configure(cfg.trace.clone());
        let summary = run_demo_worker(&cfg, steps)?;
        println!("{}", summary.to_line());
        return Ok(());
    }
    // Two-tier re-entry for `--hosts`: this process is ONE host running
    // `ranks_per_host` rank threads over a shared shm fabric; its RANK
    // env is the host index.
    if args.first().is_some_and(|a| a == "--demo-host-worker") {
        let steps: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
        let ranks_per_host: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        let cfg = NetConfig::from_env()?;
        dear_core::trace::configure(cfg.trace.clone());
        for summary in run_demo_host(&cfg, steps, ranks_per_host)? {
            println!("{}", summary.to_line());
        }
        return Ok(());
    }
    let mut cli = match parse_cli(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("dear-launch: {msg}\n\n{USAGE}");
            return Err(NetError::Config(msg));
        }
    };
    let command = if cli.demo {
        let me = std::env::current_exe()
            .map_err(|e| NetError::io("locating the dear-launch binary", e))?;
        let me = me.to_string_lossy().into_owned();
        match cli.hosts {
            // Tiered mode: the supervisor spawns H *host* processes; each
            // re-enters as `--demo-host-worker` and fans out its N/H rank
            // threads itself, so its RANK env is the host index.
            Some(hosts) => {
                let ranks_per_host = cli.opts.world / hosts;
                cli.opts.world = hosts;
                vec![
                    me,
                    "--demo-host-worker".to_string(),
                    cli.steps.to_string(),
                    ranks_per_host.to_string(),
                ]
            }
            None => vec![me, "--demo-worker".to_string(), cli.steps.to_string()],
        }
    } else {
        cli.command
    };
    if cli.elastic {
        let chaos = ChaosPlan::generate(
            cli.chaos_seed,
            cli.opts.world,
            cli.chaos_count,
            cli.chaos_window,
        );
        let outcome = launch_world_elastic(&command, &cli.opts, &cli.policy, &chaos)?;
        eprintln!(
            "dear-launch: all {} ranks exited cleanly (generation {}, {} restart(s))",
            cli.opts.world, outcome.generation, outcome.restarts
        );
    } else {
        match launch_world(&command, &cli.opts)? {
            WorldOutcome::AllExitedCleanly => {
                eprintln!("dear-launch: all {} ranks exited cleanly", cli.opts.world);
            }
            WorldOutcome::SurvivedDepartures { departed } => {
                eprintln!(
                    "dear-launch: {} of {} ranks departed ({departed:?}); \
                     the survivors resized in place and exited cleanly",
                    departed.len(),
                    cli.opts.world
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dear-launch: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Single-process TCP loopback: all `world` ranks in one process, real
//! sockets over `127.0.0.1`. This is the bridge between the in-process
//! [`LocalFabric`](dear_collectives::LocalFabric) tests and true
//! multi-process deployment — same wire protocol, same endpoint code, no
//! process management.

use std::net::TcpListener;

use dear_collectives::Transport;

use crate::config::NetConfig;
use crate::endpoint::TcpEndpoint;
use crate::NetError;

/// Builds a `world`-rank TCP cluster inside this process and returns the
/// endpoints in rank order. The master listener is bound on an ephemeral
/// `127.0.0.1` port first, so no fixed port is needed and parallel test
/// runs cannot collide.
///
/// # Errors
///
/// Returns the first [`NetError`] any rank hit during rendezvous.
///
/// # Panics
///
/// Panics if a rendezvous thread panics.
pub fn tcp_loopback(world: usize) -> Result<Vec<TcpEndpoint>, NetError> {
    tcp_loopback_with(world, |cfg| cfg)
}

/// [`tcp_loopback`] with a configuration hook applied to every rank's
/// [`NetConfig`] before connecting (e.g. to shrink timeouts in tests).
///
/// # Errors
///
/// Returns the first [`NetError`] any rank hit during rendezvous.
///
/// # Panics
///
/// Panics if a rendezvous thread panics.
pub fn tcp_loopback_with<F>(world: usize, tweak: F) -> Result<Vec<TcpEndpoint>, NetError>
where
    F: Fn(NetConfig) -> NetConfig,
{
    if world == 0 {
        return Err(NetError::Config("world size must be positive".to_string()));
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))
        .map_err(|e| NetError::io("binding loopback master listener", e))?;
    let master_addr = listener
        .local_addr()
        .map_err(|e| NetError::io("reading loopback master address", e))?
        .to_string();
    std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(world.saturating_sub(1));
        for rank in 1..world {
            let cfg = tweak(NetConfig::new(world, rank, master_addr.clone()));
            workers.push(s.spawn(move || TcpEndpoint::connect(&cfg)));
        }
        let cfg0 = tweak(NetConfig::new(world, 0, master_addr.clone()));
        let ep0 = TcpEndpoint::connect_with_listener(&cfg0, listener)?;
        let mut endpoints = vec![ep0];
        for handle in workers {
            endpoints.push(handle.join().expect("loopback rank panicked")?);
        }
        endpoints.sort_by_key(|ep| ep.rank());
        Ok(endpoints)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_assigns_every_rank_once() {
        let eps = tcp_loopback(5).unwrap();
        assert_eq!(eps.len(), 5);
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i);
            assert_eq!(ep.world_size(), 5);
        }
    }

    #[test]
    fn loopback_runs_a_real_all_reduce() {
        let eps = tcp_loopback(4).unwrap();
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 32];
                    dear_collectives::ring_all_reduce(
                        ep,
                        &mut data,
                        dear_collectives::ReduceOp::Sum,
                    )
                    .unwrap();
                    assert_eq!(data, vec![10.0; 32]); // 1+2+3+4
                });
            }
        });
    }
}

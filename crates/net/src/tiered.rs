//! `TieredEndpoint` — the topology-aware two-tier transport: shared
//! memory within a host, TCP between hosts.
//!
//! Real clusters are hierarchical: ranks on one machine reach each other
//! through memory at sub-microsecond latency, ranks on different machines
//! pay the NIC. A [`TieredEndpoint`] composes the two tiers behind the
//! single [`Transport`] contract, routing **per peer** by host locality:
//! a message to a co-located rank crosses the [`ShmEndpoint`]'s ring
//! buffers, anything else goes over the [`TcpEndpoint`]'s mesh. The
//! collectives above never know — which is the point: the same ring /
//! halving-doubling / hierarchical code runs unchanged, and the
//! hierarchical variants get their intra-node speedup from the transport
//! rather than from special cases.
//!
//! Host locality is not configured twice: it comes from the TCP
//! rendezvous. Every rank's HELLO carries its host id (`--hosts` /
//! `DEAR_HOST_ID`), the master republishes the full table in the WELCOME,
//! and [`TcpEndpoint::host_ids`] exposes it — so the tiered router, the
//! topology-aware hierarchical groups, and the online algorithm selector
//! all agree on who is co-located with whom.
//!
//! Elastic resize keeps working across tiers. `reconfigure` lets the TCP
//! rendezvous adjudicate the new world first (it alone can see every
//! host), then remaps the shm fabric from the WELCOME's `prev_ranks`
//! table via [`ShmEndpoint::remap`] — master election means new ranks are
//! *not* ascending in old rank, so the explicit old→new map is the only
//! safe way to re-identify co-located survivors.
//!
//! Heartbeats run on **both** tiers deliberately: the TCP mesh keeps its
//! full mesh (co-located pairs included) so a wedged rank is detected
//! cluster-wide even when all its collective traffic flows over memory.

use std::time::{Duration, Instant};

use dear_collectives::{
    CollectiveError, CostModel, Message, NetworkPreset, Transport, WorldChange,
};

use crate::config::NetConfig;
use crate::endpoint::TcpEndpoint;
use crate::shm::{ShmEndpoint, ShmFabric};
use crate::NetError;

/// A two-tier endpoint: shm to co-located ranks, TCP to everyone else.
/// See the [module docs](self).
#[derive(Debug)]
pub struct TieredEndpoint {
    tcp: TcpEndpoint,
    shm: Option<ShmEndpoint>,
}

impl TieredEndpoint {
    /// Composes a TCP mesh with an optional shm fabric endpoint for the
    /// same rank. With `None` every peer routes over TCP — the graceful
    /// degradation when no host ids were configured.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Config`] when the two tiers disagree on rank,
    /// world size, or generation, or when the shm fabric claims a peer
    /// that the TCP rendezvous' host table places on a different host —
    /// a misroute would corrupt collectives, so it is refused up front.
    pub fn compose(tcp: TcpEndpoint, shm: Option<ShmEndpoint>) -> Result<TieredEndpoint, NetError> {
        if let Some(shm) = &shm {
            if shm.rank() != tcp.rank() || shm.world_size() != tcp.world_size() {
                return Err(NetError::Config(format!(
                    "tier mismatch: shm is rank {}/{}, tcp is rank {}/{}",
                    shm.rank(),
                    shm.world_size(),
                    tcp.rank(),
                    tcp.world_size()
                )));
            }
            if shm.generation() != tcp.generation() {
                return Err(NetError::Config(format!(
                    "tier mismatch: shm at generation {}, tcp at generation {}",
                    shm.generation(),
                    tcp.generation()
                )));
            }
            let hosts = tcp.host_ids();
            let own_host = hosts[tcp.rank()];
            for (peer, &host) in hosts.iter().enumerate() {
                if peer != tcp.rank() && shm.is_local(peer) && host != own_host {
                    return Err(NetError::Config(format!(
                        "tier mismatch: shm fabric claims rank {peer}, but the rendezvous \
                         places it on host {host:#x}, not {own_host:#x}"
                    )));
                }
            }
        }
        Ok(TieredEndpoint { tcp, shm })
    }

    /// Whether `peer` routes over the shm tier.
    #[must_use]
    pub fn is_local(&self, peer: usize) -> bool {
        peer != self.tcp.rank() && self.shm.as_ref().is_some_and(|s| s.is_local(peer))
    }

    /// The underlying TCP endpoint (host tables, peer stats, generation).
    #[must_use]
    pub fn tcp(&self) -> &TcpEndpoint {
        &self.tcp
    }

    /// The shm tier, when one is attached.
    #[must_use]
    pub fn shm(&self) -> Option<&ShmEndpoint> {
        self.shm.as_ref()
    }

    /// Per-rank host ids from the rendezvous — the input to
    /// topology-aware hierarchical groups.
    #[must_use]
    pub fn host_ids(&self) -> &[u64] {
        self.tcp.host_ids()
    }

    fn tier_for(&self, peer: usize) -> &dyn Transport {
        match &self.shm {
            Some(shm) if peer != self.tcp.rank() && shm.is_local(peer) => shm,
            _ => &self.tcp,
        }
    }
}

impl Transport for TieredEndpoint {
    fn rank(&self) -> usize {
        self.tcp.rank()
    }

    fn world_size(&self) -> usize {
        self.tcp.world_size()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CollectiveError> {
        self.tier_for(to).send(to, msg)
    }

    fn recv(&self, from: usize) -> Result<Message, CollectiveError> {
        self.tier_for(from).recv(from)
    }

    fn set_recv_timeout(&self, timeout: Option<Duration>) -> bool {
        let tcp_ok = self.tcp.set_recv_timeout(timeout);
        if let Some(shm) = &self.shm {
            shm.set_recv_timeout(timeout);
        }
        tcp_ok
    }

    fn take_buffer(&self, capacity_bytes: usize) -> Vec<u8> {
        self.tcp.take_buffer(capacity_bytes)
    }

    fn recycle_buffer(&self, buf: Vec<u8>) {
        self.tcp.recycle_buffer(buf)
    }

    /// Survives member loss across both tiers. The TCP rendezvous
    /// adjudicates first — it alone spans every host — and its WELCOME
    /// tables then drive the shm remap: co-located survivors are the new
    /// ranks sharing this rank's host id whose `prev_ranks` entry maps
    /// back onto the old fabric. Fresh joiners never enter an existing
    /// fabric (membership is fixed at creation); they are reached over
    /// TCP until the next full launch.
    ///
    /// Every co-located survivor must call this concurrently (they meet
    /// at the fabric's epoch gate), which is exactly how the elastic
    /// protocol already drives `reconfigure` on every surviving rank.
    fn reconfigure(&mut self, survivors: Option<&[usize]>) -> Result<WorldChange, CollectiveError> {
        let change = self.tcp.reconfigure(survivors)?;
        let Some(shm) = &mut self.shm else {
            return Ok(change);
        };
        let hosts = self.tcp.host_ids();
        let prevs = self.tcp.prev_ranks();
        let own_host = hosts[change.new_rank];
        let mut pairs = Vec::new();
        for new in 0..change.new_world {
            if hosts[new] != own_host {
                continue;
            }
            let prev = prevs[new];
            if prev == u32::MAX {
                continue; // fresh joiner: TCP-only until the next launch
            }
            let old = prev as usize;
            if old == change.old_rank || shm.is_local(old) {
                pairs.push((old, new));
            }
        }
        shm.remap(change.new_world, change.generation, &pairs)?;
        Ok(change)
    }
}

/// Builds a tiered cluster inside this process: `hosts × ranks_per_host`
/// ranks over real loopback TCP, with one [`ShmFabric`] per simulated
/// host. Rank `r` lives on host `r / ranks_per_host`; endpoints return in
/// rank order. The single-process analog of `dear-launch --hosts`.
///
/// # Errors
///
/// Returns the first [`NetError`] any rank hit during rendezvous or
/// composition.
///
/// # Panics
///
/// Panics if a rendezvous thread panics.
pub fn tiered_loopback(
    hosts: usize,
    ranks_per_host: usize,
) -> Result<Vec<TieredEndpoint>, NetError> {
    tiered_loopback_with(hosts, ranks_per_host, |cfg| cfg)
}

/// [`tiered_loopback`] with a configuration hook applied to every rank's
/// [`NetConfig`] (after the host id is derived from the rank).
///
/// # Errors
///
/// Returns the first [`NetError`] any rank hit during rendezvous or
/// composition.
///
/// # Panics
///
/// Panics if a rendezvous thread panics, or if `hosts == 0` or
/// `ranks_per_host == 0`.
pub fn tiered_loopback_with<F>(
    hosts: usize,
    ranks_per_host: usize,
    tweak: F,
) -> Result<Vec<TieredEndpoint>, NetError>
where
    F: Fn(NetConfig) -> NetConfig,
{
    assert!(hosts > 0 && ranks_per_host > 0, "empty tiered world");
    let world = hosts * ranks_per_host;
    let tcps = crate::loopback::tcp_loopback_with(world, |cfg| {
        let host = cfg.rank.expect("loopback sets the rank") / ranks_per_host;
        tweak(cfg.with_host_id(Some(host as u64)))
    })?;
    // One fabric per host, sized/configured like the TCP tier.
    let shm_cfg = tweak(NetConfig::new(world, 0, "127.0.0.1:0"));
    let mut fabrics: Vec<Vec<ShmEndpoint>> = (0..hosts)
        .map(|h| {
            let members: Vec<usize> = (h * ranks_per_host..(h + 1) * ranks_per_host).collect();
            let mut eps = ShmFabric::with_config(&shm_cfg, &members);
            eps.reverse(); // pop() below hands them out in rank order
            eps
        })
        .collect();
    tcps.into_iter()
        .map(|tcp| {
            let host = tcp.rank() / ranks_per_host;
            let shm = if ranks_per_host > 1 {
                Some(fabrics[host].pop().expect("one fabric slot per rank"))
            } else {
                None // a 1-rank host has no co-located peers
            };
            TieredEndpoint::compose(tcp, shm)
        })
        .collect()
}

/// Measures one link's α-β cost model with a ping-pong probe and fits it
/// by least squares: for each probe size the pair exchanges a round trip
/// `reps` times, takes the **minimum** half round trip (minimum, not
/// mean: queueing noise only ever adds latency), and feeds the
/// `(bytes, ns)` samples to [`CostModel::fit`].
///
/// Both ranks of the pair call this concurrently naming each other; the
/// lower rank serves first (recv → send), the higher initiates
/// (send → recv), so the call is symmetric and returns the same samples
/// on both sides. Run it over a [`ShmEndpoint`] pair and a cross-host
/// pair separately to get the per-tier models the online algorithm
/// selector consumes.
///
/// # Errors
///
/// Propagates the first transport error; returns
/// [`CollectiveError::InvalidRank`] for a self-probe.
pub fn probe_alpha_beta<T: Transport + ?Sized>(
    ep: &T,
    peer: usize,
    sizes_bytes: &[usize],
    reps: usize,
) -> Result<CostModel, CollectiveError> {
    ep.check_peer(peer)?;
    let initiator = ep.rank() > peer;
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(sizes_bytes.len());
    for &bytes in sizes_bytes {
        let elems = (bytes / 4).max(1);
        let payload = vec![1.0f32; elems];
        let mut best_ns = u64::MAX;
        for _ in 0..reps {
            if initiator {
                let start = Instant::now();
                ep.send(peer, payload.clone().into())?;
                let echo = ep.recv(peer)?;
                let rtt = start.elapsed();
                drop(echo);
                best_ns = best_ns.min((rtt.as_nanos() / 2) as u64);
            } else {
                let msg = ep.recv(peer)?;
                ep.send(peer, msg)?;
            }
        }
        if initiator {
            samples.push((elems as u64 * 4, best_ns as f64));
        } else {
            // The server echoes timings it cannot take itself; recompute
            // locally so both sides return a model. One extra round trip
            // per size keeps the protocol symmetric without a side channel.
            let start = Instant::now();
            ep.send(peer, payload.clone().into())?;
            let _ = ep.recv(peer)?;
            samples.push((
                elems as u64 * 4,
                (start.elapsed().as_nanos() / 2) as u64 as f64,
            ));
        }
        if !initiator {
            continue;
        }
        // Mirror the server's extra round trip.
        let msg = ep.recv(peer)?;
        ep.send(peer, msg)?;
    }
    if samples.len() < 2 || samples.iter().all(|&(b, _)| b == samples[0].0) {
        return Err(CollectiveError::Reconfigure {
            reason: "alpha-beta probe needs at least two distinct sizes".to_string(),
        });
    }
    // A degenerate least-squares fit (negative slope or intercept before
    // clamping — loopback noise made the big probe beat the small one)
    // would poison every AlgoSelector cost comparison with a zero-α or
    // zero-β model. Fall back to the preset that best explains the
    // samples instead of trusting a fit the data cannot support.
    Ok(CostModel::fit_checked(&samples).unwrap_or_else(|| preset_fallback(&samples)))
}

/// The calibrated [`NetworkPreset`] model closest to the measured samples
/// (least total absolute residual) — the probe's answer when its own
/// least-squares fit is degenerate.
fn preset_fallback(samples: &[(u64, f64)]) -> CostModel {
    let presets = [
        NetworkPreset::TenGbE,
        NetworkPreset::HundredGbIb,
        NetworkPreset::NvLink,
    ];
    let residual = |m: &CostModel| {
        samples
            .iter()
            .map(|&(b, t)| (m.p2p(b).as_nanos() as f64 - t).abs())
            .sum::<f64>()
    };
    presets
        .into_iter()
        .map(NetworkPreset::cost_model)
        .min_by(|a, b| residual(a).total_cmp(&residual(b)))
        .expect("preset list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_collectives::{ring_all_reduce, ReduceOp};
    use std::time::Duration;

    fn fast(cfg: NetConfig) -> NetConfig {
        cfg.with_send_timeout(Duration::from_secs(5))
            .with_recv_timeout(Some(Duration::from_secs(10)))
    }

    #[test]
    fn degenerate_probe_samples_fall_back_to_the_nearest_preset() {
        // Adversarial loopback noise: the 64 KB probe "finished faster"
        // than the 1 KB one. The least-squares fit is degenerate (negative
        // slope), so the probe must answer with a preset, not a zero-β
        // model claiming infinite bandwidth.
        let decreasing = [(1_000u64, 50_000.0), (64_000, 10_000.0)];
        assert!(CostModel::fit_checked(&decreasing).is_none());
        let fallback = preset_fallback(&decreasing);
        assert!(
            fallback.beta_ns_per_byte > 0.0 && fallback.alpha_ns > 0.0,
            "fallback must be a usable preset, got {fallback:?}"
        );
        // The fallback picks the preset that best explains the samples:
        // exact samples from a preset's own model select that preset.
        for preset in [
            NetworkPreset::TenGbE,
            NetworkPreset::HundredGbIb,
            NetworkPreset::NvLink,
        ] {
            let m = preset.cost_model();
            let samples: Vec<(u64, f64)> = [1_000u64, 64_000, 1 << 20]
                .iter()
                .map(|&b| (b, m.p2p(b).as_nanos() as f64))
                .collect();
            let picked = preset_fallback(&samples);
            assert_eq!(
                picked.alpha_ns,
                m.alpha_ns,
                "{} samples picked {picked:?}",
                preset.label()
            );
        }
    }

    #[test]
    fn tiered_routes_local_peers_over_shm() {
        let eps = tiered_loopback_with(2, 2, fast).unwrap();
        // Ranks 0,1 on host 0; ranks 2,3 on host 1.
        assert!(eps[0].is_local(1));
        assert!(!eps[0].is_local(2));
        assert!(!eps[0].is_local(3));
        assert!(!eps[0].is_local(0), "self is not a peer");
        assert!(eps[3].is_local(2));
        assert_eq!(eps[0].host_ids(), &[0, 0, 1, 1]);
    }

    #[test]
    fn tiered_all_reduce_matches_analytic_sum() {
        let eps = tiered_loopback_with(2, 2, fast).unwrap();
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 64];
                    ring_all_reduce(ep, &mut data, ReduceOp::Sum).unwrap();
                    assert_eq!(data, vec![10.0; 64]);
                });
            }
        });
    }

    #[test]
    fn one_rank_hosts_degrade_to_pure_tcp() {
        let eps = tiered_loopback_with(3, 1, fast).unwrap();
        for ep in &eps {
            assert!(ep.shm().is_none());
            for peer in 0..3 {
                assert!(!ep.is_local(peer));
            }
        }
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32; 16];
                    ring_all_reduce(ep, &mut data, ReduceOp::Sum).unwrap();
                    assert_eq!(data, vec![3.0; 16]);
                });
            }
        });
    }

    #[test]
    fn compose_rejects_mismatched_tiers() {
        let tcps = crate::loopback::tcp_loopback_with(2, fast).unwrap();
        // An shm endpoint claiming a different rank than the TCP one.
        let mut shm = ShmFabric::create(2);
        let wrong = shm.remove(1); // rank 1 paired with tcp rank 0
        let err =
            TieredEndpoint::compose(tcps.into_iter().next().unwrap(), Some(wrong)).unwrap_err();
        assert!(
            matches!(err, NetError::Config(ref m) if m.contains("tier mismatch")),
            "{err}"
        );
    }

    #[test]
    fn compose_rejects_shm_peers_the_rendezvous_disowns() {
        // TCP says the two ranks are on different hosts, but the fabric
        // claims both: composing must fail loudly, not misroute.
        let tcps = crate::loopback::tcp_loopback_with(2, |cfg| {
            let host = cfg.rank.expect("rank set");
            fast(cfg.with_host_id(Some(host as u64)))
        })
        .unwrap();
        let mut shm = ShmFabric::create(2);
        let ep0 = shm.remove(0);
        let err = TieredEndpoint::compose(tcps.into_iter().next().unwrap(), Some(ep0)).unwrap_err();
        assert!(
            matches!(err, NetError::Config(ref m) if m.contains("places it on host")),
            "{err}"
        );
    }

    #[test]
    fn alpha_beta_probe_fits_a_positive_model_per_tier() {
        let eps = tiered_loopback_with(1, 2, fast).unwrap();
        let sizes = [1usize << 10, 1 << 14, 1 << 17];
        let models: Vec<CostModel> = std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter()
                .map(|ep| {
                    let peer = 1 - ep.rank();
                    s.spawn(move || probe_alpha_beta(ep, peer, &sizes, 3).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for m in &models {
            assert!(m.beta_ns_per_byte > 0.0, "fitted β must be positive: {m:?}");
            assert!(m.p2p(1 << 20).as_nanos() > 0);
        }
    }
}

//! Best-effort comm-thread core pinning ([`NetConfig::pin_comm`]).
//!
//! A dedicated comm core keeps the byte hot path's cache state (SIMD
//! kernels, frame headers, pooled buffers) warm across frames instead of
//! bouncing between whatever cores the scheduler picks. The syscall is
//! issued through a minimal hand-rolled FFI declaration — `std` already
//! links `libc` on Linux, so no new dependency is involved — and pinning
//! is strictly best-effort: an impossible core or a non-Linux host is a
//! silent no-op, never an error.
//!
//! [`NetConfig::pin_comm`]: crate::NetConfig::pin_comm

/// Bits in a Linux `cpu_set_t` (1024 CPUs, the glibc default).
#[cfg(target_os = "linux")]
const CPU_SET_BITS: usize = 1024;

/// Pins the calling thread to `cpu`. Returns whether the kernel accepted
/// the affinity mask; `false` (out-of-range core, kernel rejection,
/// non-Linux host) leaves the thread's affinity unchanged.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= CPU_SET_BITS {
        return false;
    }
    // A cpu_set_t is a plain bitmask; build it as u64 words.
    let mut mask = [0u64; CPU_SET_BITS / 64];
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    extern "C" {
        /// `sched_setaffinity(2)`; pid 0 means the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask pointer is valid for `size_of_val(&mask)` bytes and
    // the syscall only reads it.
    unsafe { sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux stub: pinning is unsupported, report it as not applied.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_core_zero_sticks() {
        // Core 0 exists on every machine; the call must succeed from a
        // fresh thread (and not disturb the test harness's own thread).
        let ok = std::thread::spawn(|| pin_current_thread(0))
            .join()
            .expect("pin thread panicked");
        assert!(ok, "pinning to core 0 should be accepted");
    }

    #[test]
    fn impossible_core_is_a_silent_no() {
        assert!(!pin_current_thread(usize::MAX));
    }
}

//! Wire framing: every byte on a `dear-net` socket travels inside a frame
//! with a fixed 5-byte header — `[kind: u8][len: u32 LE]` — followed by
//! `len` payload bytes. Gradient payloads are dtype-tagged byte arrays
//! (`[generation: u64][dtype: u8][element bytes]`, see [`WireBuf`]);
//! rendezvous control frames carry small hand-rolled binary bodies.
//!
//! Little-endian is the wire byte order regardless of host (the paper's
//! testbeds are x86-64, but the format is explicit so heterogeneous hosts
//! interoperate). Data frames are **self-describing**: the receiver decodes
//! by the frame's own dtype tag, never by local configuration, so peers on
//! different wire precisions interoperate frame by frame.

use std::io::{self, IoSlice, Read, Write};

use dear_collectives::{DType, WireBuf};

/// Bytes of the fixed frame header: `[kind: u8][len: u32 LE]`.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Frame type tags. The numeric values are wire ABI; do not renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A generation-stamped, dtype-tagged gradient/parameter payload
    /// (`[generation: u64][dtype: u8][element bytes LE]` — a [`Message`]
    /// payload). The generation lets a restarted world reject frames that
    /// straggle in from a previous incarnation; the dtype tag (see
    /// [`DType::tag`]) makes each frame self-describing.
    ///
    /// [`Message`]: dear_collectives::Message
    Data = 1,
    /// Graceful end-of-stream: the peer is done sending forever.
    Shutdown = 2,
    /// Worker → master: join request
    /// (`[rank: u32][port: u16][generation: u64][host_id: u64][host utf8]`,
    /// rank `u32::MAX` requests auto-assignment).
    Hello = 3,
    /// Master → worker: rank assignment and peer table
    /// (`[rank: u32][world: u32][generation: u64]`, per rank
    /// `[len: u16][addr utf8]`, then per rank
    /// `[host_id: u64][prev_rank: u32]`).
    Welcome = 4,
    /// Mesh dial: first frame on a peer-to-peer connection, identifying the
    /// dialling rank (`[rank: u32]`).
    Ident = 5,
    /// Worker → rank 0: full mesh established, ready for step 0.
    Ready = 6,
    /// Rank 0 → worker: all ranks ready, start.
    Go = 7,
    /// Periodic liveness probe (`[generation: u64]`), sent by the
    /// heartbeat monitor when a peer link has been idle. Carries no data;
    /// any frame arriving counts as liveness.
    Heartbeat = 8,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Data,
            2 => FrameKind::Shutdown,
            3 => FrameKind::Hello,
            4 => FrameKind::Welcome,
            5 => FrameKind::Ident,
            6 => FrameKind::Ready,
            7 => FrameKind::Go,
            8 => FrameKind::Heartbeat,
            _ => return None,
        })
    }
}

/// Upper bound on a frame body; larger lengths are treated as stream
/// corruption rather than honoured with a giant allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Checks that a body of `len` bytes fits in a frame. The header's length
/// field is a `u32`, so a body over [`MAX_FRAME_BYTES`] must be rejected
/// here — `len as u32` would silently truncate at 4 GiB and desynchronize
/// the stream (the peer would read the truncated length, then misparse the
/// remaining bytes as headers).
///
/// # Errors
///
/// Returns `InvalidData` when `len > MAX_FRAME_BYTES`.
pub fn check_body_len(len: usize) -> io::Result<()> {
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    Ok(())
}

/// Writes one frame. `body` is borrowed; the caller keeps its buffer.
///
/// # Errors
///
/// Returns `InvalidData` (via [`check_body_len`]) for bodies over
/// [`MAX_FRAME_BYTES`]; otherwise propagates I/O errors from the
/// underlying writer.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, body: &[u8]) -> io::Result<()> {
    check_body_len(body.len())?;
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
    write_all_vectored(w, &header, body)
}

/// Writes `header` then `body` via `write_vectored`: one syscall on the
/// happy path (so a frame can never be torn between a header write and a
/// body write by a peer death in the gap), with a partial-write
/// continuation loop for short writes on non-blocking-ish transports.
fn write_all_vectored<W: Write>(w: &mut W, header: &[u8], body: &[u8]) -> io::Result<()> {
    let mut bufs = [IoSlice::new(header), IoSlice::new(body)];
    let mut slices = &mut bufs[..];
    let mut remaining = header.len() + body.len();
    while remaining > 0 {
        match w.write_vectored(slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ));
            }
            Ok(n) => {
                remaining -= n.min(remaining);
                if remaining == 0 {
                    break;
                }
                IoSlice::advance_slices(&mut slices, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Bytes of a [`FrameKind::Data`] frame before the element bytes: the
/// frame header plus the generation stamp and dtype tag.
pub const DATA_HEADER_BYTES: usize = FRAME_HEADER_BYTES + DATA_BODY_OVERHEAD;

/// Builds the complete header of a [`FrameKind::Data`] frame on the stack:
/// `[kind][len: u32 LE][generation: u64 LE][dtype tag]`. Pairing this with
/// the payload's own byte slice replaces the old copy-assembled body `Vec`
/// — the element bytes never move until the kernel copies them out.
///
/// # Errors
///
/// Returns `InvalidData` (via [`check_body_len`]) when the payload would
/// exceed [`MAX_FRAME_BYTES`].
pub fn data_frame_header(
    generation: u64,
    payload: &WireBuf,
) -> io::Result<[u8; DATA_HEADER_BYTES]> {
    let body_len = DATA_BODY_OVERHEAD + payload.num_bytes();
    check_body_len(body_len)?;
    let mut header = [0u8; DATA_HEADER_BYTES];
    header[0] = FrameKind::Data as u8;
    header[1..5].copy_from_slice(&(body_len as u32).to_le_bytes());
    header[5..13].copy_from_slice(&generation.to_le_bytes());
    header[13] = payload.dtype().tag();
    Ok(header)
}

/// Writes one [`FrameKind::Data`] frame as a stack header + borrowed
/// payload pair via `write_all_vectored` — a single syscall in the
/// common case, zero payload copies. Returns the wire bytes written so the
/// caller can count traffic without re-deriving frame overheads.
///
/// # Errors
///
/// Returns `InvalidData` for oversize payloads; otherwise propagates I/O
/// errors from the underlying writer.
pub fn write_data_frame<W: Write>(
    w: &mut W,
    generation: u64,
    payload: &WireBuf,
) -> io::Result<usize> {
    let header = data_frame_header(generation, payload)?;
    write_all_vectored(w, &header, payload.bytes())?;
    Ok(DATA_HEADER_BYTES + payload.num_bytes())
}

/// Reads and validates one frame header, returning the kind and body
/// length without touching the body bytes — the caller chooses where the
/// body lands (a pooled buffer for data payloads, a scratch `Vec` for
/// control frames).
///
/// # Errors
///
/// Returns `UnexpectedEof` at end of stream, and `InvalidData` for unknown
/// kinds or oversized lengths.
pub fn read_frame_header<R: Read>(r: &mut R) -> io::Result<(FrameKind, usize)> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let kind = FrameKind::from_u8(header[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame kind {}", header[0]),
        )
    })?;
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4-byte slice")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    Ok((kind, len))
}

/// Reads one frame into `body` (cleared and reused, so steady-state reads
/// don't allocate). Returns the frame kind.
///
/// # Errors
///
/// Returns `UnexpectedEof` at end of stream, and `InvalidData` for unknown
/// kinds or oversized lengths.
pub fn read_frame<R: Read>(r: &mut R, body: &mut Vec<u8>) -> io::Result<FrameKind> {
    let (kind, len) = read_frame_header(r)?;
    body.clear();
    body.resize(len, 0);
    r.read_exact(body)?;
    Ok(kind)
}

/// Encodes `elems` as the LE byte body of a [`FrameKind::Data`] frame into
/// `out` (cleared and reused).
pub fn encode_f32s(elems: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(elems.len() * 4);
    for x in elems {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Decodes a [`FrameKind::Data`] body into `out` (cleared and reused).
///
/// # Errors
///
/// Returns `InvalidData` if the body length is not a multiple of 4.
pub fn decode_f32s(body: &[u8], out: &mut Vec<f32>) -> io::Result<()> {
    if !body.len().is_multiple_of(4) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("data frame of {} bytes is not whole f32s", body.len()),
        ));
    }
    out.clear();
    out.reserve(body.len() / 4);
    for chunk in body.chunks_exact(4) {
        out.push(f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
    }
    Ok(())
}

/// Bytes of [`FrameKind::Data`] body overhead before the element bytes:
/// the 8-byte generation stamp plus the 1-byte dtype tag.
pub const DATA_BODY_OVERHEAD: usize = 9;

/// Encodes a [`FrameKind::Data`] body: an 8-byte LE generation stamp, a
/// 1-byte dtype tag, then the payload's element bytes (`out` cleared and
/// reused). Lengths are **bytes**, dtype-dependent: a bf16 payload's body
/// is half the size of the same element count in f32.
pub fn encode_data_body(generation: u64, payload: &WireBuf, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(DATA_BODY_OVERHEAD + payload.num_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.push(payload.dtype().tag());
    out.extend_from_slice(payload.bytes());
}

/// Splits a [`FrameKind::Data`] body into its generation stamp, dtype, and
/// the raw element bytes.
///
/// # Errors
///
/// Returns `InvalidData` if the body is shorter than the stamp + tag, or
/// carries an unknown dtype tag.
pub fn split_data_body(body: &[u8]) -> io::Result<(u64, DType, &[u8])> {
    if body.len() < DATA_BODY_OVERHEAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "data frame of {} bytes lacks a generation stamp and dtype tag",
                body.len()
            ),
        ));
    }
    let generation = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let dtype = DType::from_tag(body[8]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown dtype tag {}", body[8]),
        )
    })?;
    Ok((generation, dtype, &body[DATA_BODY_OVERHEAD..]))
}

/// Encodes the 8-byte body of a [`FrameKind::Heartbeat`] frame.
#[must_use]
pub fn encode_generation(generation: u64) -> [u8; 8] {
    generation.to_le_bytes()
}

/// Decodes a [`FrameKind::Heartbeat`] body.
///
/// # Errors
///
/// Returns `InvalidData` if the body is not exactly 8 bytes.
pub fn decode_generation(body: &[u8]) -> io::Result<u64> {
    let bytes: [u8; 8] = body
        .try_into()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "short HEARTBEAT"))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Body of a [`FrameKind::Hello`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Requested rank, or `u32::MAX` for auto-assignment.
    pub rank: u32,
    /// The worker's listener port.
    pub port: u16,
    /// The world generation the worker believes it is joining; the master
    /// rejects mismatches so a straggler from a killed incarnation cannot
    /// join the restarted world.
    pub generation: u64,
    /// The worker's physical-host identity (`DEAR_HOST_ID`), republished by
    /// the master in the WELCOME so every rank learns the full host map —
    /// the fact the tiered transport routes on. [`crate::NetConfig::UNKNOWN_HOST`]
    /// means "not configured"; the master then assigns a unique pseudo-host
    /// per rank, degenerating to the all-TCP behavior.
    pub host_id: u64,
    /// Advertised host; empty means "use the address the master sees".
    pub host: String,
}

impl Hello {
    /// Serializes to a frame body
    /// (`[rank: u32][port: u16][generation: u64][host_id: u64][host utf8]`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(22 + self.host.len());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.port.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.host_id.to_le_bytes());
        out.extend_from_slice(self.host.as_bytes());
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on truncation or malformed UTF-8.
    pub fn decode(body: &[u8]) -> io::Result<Hello> {
        if body.len() < 22 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "short HELLO"));
        }
        let rank = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
        let port = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        let generation = u64::from_le_bytes(body[6..14].try_into().expect("8 bytes"));
        let host_id = u64::from_le_bytes(body[14..22].try_into().expect("8 bytes"));
        let host = std::str::from_utf8(&body[22..])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "HELLO host not UTF-8"))?
            .to_string();
        Ok(Hello {
            rank,
            port,
            generation,
            host_id,
            host,
        })
    }
}

/// Body of a [`FrameKind::Welcome`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// The rank assigned to the receiving worker.
    pub rank: u32,
    /// World size.
    pub world: u32,
    /// The master's world generation, authoritative for every member.
    pub generation: u64,
    /// Dialable `host:port` of every rank's listener, indexed by rank.
    pub addrs: Vec<String>,
    /// Physical-host identity of every rank, indexed by rank — collected
    /// from the HELLOs and republished so each member can tell which peers
    /// share its host (and thus its shared-memory fabric).
    pub host_ids: Vec<u64>,
    /// Each rank's rank in the **previous** generation, indexed by (new)
    /// rank; `u32::MAX` for fresh joiners and at initial rendezvous for
    /// nobody (every rank maps to itself). A resize survivor uses this
    /// table to re-locate peers it knew by old rank — e.g. which surviving
    /// shared-memory neighbors map to which new global ranks.
    pub prev_ranks: Vec<u32>,
}

impl Welcome {
    /// Serializes to a frame body
    /// (`[rank: u32][world: u32][generation: u64]`, the addr table, then
    /// per rank `[host_id: u64][prev_rank: u32]`).
    ///
    /// # Panics
    ///
    /// Panics if `host_ids` or `prev_ranks` length disagrees with `addrs`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(
            self.addrs.len(),
            self.host_ids.len(),
            "one host id per rank"
        );
        assert_eq!(
            self.addrs.len(),
            self.prev_ranks.len(),
            "one prev rank per rank"
        );
        let mut out = Vec::new();
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        for addr in &self.addrs {
            out.extend_from_slice(&(addr.len() as u16).to_le_bytes());
            out.extend_from_slice(addr.as_bytes());
        }
        for (&host_id, &prev) in self.host_ids.iter().zip(&self.prev_ranks) {
            out.extend_from_slice(&host_id.to_le_bytes());
            out.extend_from_slice(&prev.to_le_bytes());
        }
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on truncation or malformed UTF-8.
    pub fn decode(body: &[u8]) -> io::Result<Welcome> {
        let short = || io::Error::new(io::ErrorKind::InvalidData, "short WELCOME");
        if body.len() < 16 {
            return Err(short());
        }
        let rank = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
        let world = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
        let generation = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        let mut addrs = Vec::with_capacity(world as usize);
        let mut at = 16usize;
        for _ in 0..world {
            if body.len() < at + 2 {
                return Err(short());
            }
            let len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
            at += 2;
            if body.len() < at + len {
                return Err(short());
            }
            let addr = std::str::from_utf8(&body[at..at + len])
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WELCOME addr not UTF-8"))?
                .to_string();
            addrs.push(addr);
            at += len;
        }
        let mut host_ids = Vec::with_capacity(world as usize);
        let mut prev_ranks = Vec::with_capacity(world as usize);
        for _ in 0..world {
            if body.len() < at + 12 {
                return Err(short());
            }
            host_ids.push(u64::from_le_bytes(
                body[at..at + 8].try_into().expect("8 bytes"),
            ));
            prev_ranks.push(u32::from_le_bytes(
                body[at + 8..at + 12].try_into().expect("4 bytes"),
            ));
            at += 12;
        }
        Ok(Welcome {
            rank,
            world,
            generation,
            addrs,
            host_ids,
            prev_ranks,
        })
    }
}

/// Encodes the 4-byte body of an [`FrameKind::Ident`] frame.
#[must_use]
pub fn encode_ident(rank: u32) -> [u8; 4] {
    rank.to_le_bytes()
}

/// Decodes an [`FrameKind::Ident`] body.
///
/// # Errors
///
/// Returns `InvalidData` if the body is not exactly 4 bytes.
pub fn decode_ident(body: &[u8]) -> io::Result<u32> {
    let bytes: [u8; 4] = body
        .try_into()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "short IDENT"))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_byte_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Data, &[1, 2, 3, 4]).unwrap();
        write_frame(&mut wire, FrameKind::Shutdown, &[]).unwrap();
        let mut cursor = &wire[..];
        let mut body = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut body).unwrap(), FrameKind::Data);
        assert_eq!(body, vec![1, 2, 3, 4]);
        assert_eq!(
            read_frame(&mut cursor, &mut body).unwrap(),
            FrameKind::Shutdown
        );
        assert!(body.is_empty());
        assert_eq!(
            read_frame(&mut cursor, &mut body).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversize_body_is_rejected_at_the_boundary() {
        // The length check is factored out so the boundary is testable
        // without allocating a gigabyte: exactly MAX is fine, MAX + 1 is
        // InvalidData (never a silent `as u32` truncation).
        assert!(check_body_len(MAX_FRAME_BYTES).is_ok());
        assert_eq!(
            check_body_len(MAX_FRAME_BYTES + 1).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            check_body_len(u32::MAX as usize + 1).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn unknown_kind_is_invalid_data() {
        let wire = [99u8, 0, 0, 0, 0];
        let mut body = Vec::new();
        assert_eq!(
            read_frame(&mut &wire[..], &mut body).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn f32_codec_is_bit_exact() {
        let elems = [0.0f32, -1.5, f32::MIN_POSITIVE, f32::NAN, 1e30, -0.0];
        let mut bytes = Vec::new();
        encode_f32s(&elems, &mut bytes);
        assert_eq!(bytes.len(), elems.len() * 4);
        let mut back = Vec::new();
        decode_f32s(&bytes, &mut back).unwrap();
        for (a, b) in elems.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f32s(&bytes[..3], &mut back).is_err());
    }

    #[test]
    fn hello_welcome_roundtrip() {
        let hello = Hello {
            rank: u32::MAX,
            port: 40_123,
            generation: 3,
            host_id: 0xDEAD_BEEF_0BAD_F00D,
            host: String::new(),
        };
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);
        assert!(Hello::decode(&hello.encode()[..20]).is_err());
        let welcome = Welcome {
            rank: 2,
            world: 4,
            generation: 3,
            addrs: vec![
                "127.0.0.1:1".into(),
                "127.0.0.1:2".into(),
                "10.0.0.3:45000".into(),
                "127.0.0.1:4".into(),
            ],
            host_ids: vec![11, 11, 22, 22],
            prev_ranks: vec![3, 1, 2, u32::MAX],
        };
        let encoded = welcome.encode();
        assert_eq!(Welcome::decode(&encoded).unwrap(), welcome);
        assert!(Welcome::decode(&encoded[..10]).is_err());
        // Truncating inside the host-id/prev-rank table is also detected.
        assert!(Welcome::decode(&encoded[..encoded.len() - 5]).is_err());
        assert_eq!(decode_ident(&encode_ident(7)).unwrap(), 7);
    }

    #[test]
    fn data_body_carries_its_generation_stamp_and_dtype() {
        let elems = [1.0f32, -2.5, f32::NAN];
        let mut body = Vec::new();
        encode_data_body(41, &WireBuf::from_f32(&elems), &mut body);
        assert_eq!(body.len(), DATA_BODY_OVERHEAD + elems.len() * 4);
        let (generation, dtype, raw) = split_data_body(&body).unwrap();
        assert_eq!(generation, 41);
        assert_eq!(dtype, DType::F32);
        let mut back = Vec::new();
        decode_f32s(raw, &mut back).unwrap();
        for (a, b) in elems.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(split_data_body(&body[..8]).is_err());
    }

    #[test]
    fn narrow_data_body_is_self_describing_and_half_size() {
        let elems = [1.0f32, 2.0, 3.0, 4.0];
        let mut f32_body = Vec::new();
        encode_data_body(7, &WireBuf::from_f32(&elems), &mut f32_body);
        let mut bf16_body = Vec::new();
        encode_data_body(7, &WireBuf::encode(&elems, DType::Bf16), &mut bf16_body);
        assert_eq!(f32_body.len(), DATA_BODY_OVERHEAD + 16);
        assert_eq!(bf16_body.len(), DATA_BODY_OVERHEAD + 8);
        let (generation, dtype, raw) = split_data_body(&bf16_body).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(dtype, DType::Bf16);
        let back = WireBuf::from_raw(dtype, raw.to_vec()).unwrap().to_f32_vec();
        assert_eq!(back, elems, "bf16-exact values roundtrip");
    }

    #[test]
    fn unknown_dtype_tag_is_invalid_data() {
        let mut body = Vec::new();
        encode_data_body(1, &WireBuf::from_f32(&[1.0]), &mut body);
        body[8] = 0xEE; // corrupt the dtype tag
        assert_eq!(
            split_data_body(&body).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    /// A writer that accepts at most `step` bytes per call, forcing the
    /// vectored path through its partial-write continuation loop across
    /// the header/payload slice boundary.
    struct Trickle {
        out: Vec<u8>,
        step: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.step);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_data_frame_matches_the_copy_assembled_encoding() {
        // The zero-copy path must be byte-for-byte the wire format the old
        // encode_data_body + write_frame pair produced — peers on either
        // implementation interoperate.
        let payload = WireBuf::encode(&[1.0f32, -2.5, f32::NAN, 65504.0], DType::F16);
        let mut old = Vec::new();
        let mut body = Vec::new();
        encode_data_body(97, &payload, &mut body);
        write_frame(&mut old, FrameKind::Data, &body).unwrap();
        let mut new = Vec::new();
        let written = write_data_frame(&mut new, 97, &payload).unwrap();
        assert_eq!(new, old);
        assert_eq!(written, new.len());
        assert_eq!(written, DATA_HEADER_BYTES + payload.num_bytes());
    }

    #[test]
    fn partial_writes_are_continued_not_torn() {
        // Trickle 3 bytes per write call: the continuation loop must
        // advance through the header slice into the payload slice and
        // still emit an intact frame.
        let payload = WireBuf::from_f32(&[0.5f32, -0.25, 3.75]);
        let mut reference = Vec::new();
        write_data_frame(&mut reference, 5, &payload).unwrap();
        for step in [1, 3, 4, 7] {
            let mut w = Trickle {
                out: Vec::new(),
                step,
            };
            write_data_frame(&mut w, 5, &payload).unwrap();
            assert_eq!(w.out, reference, "step {step}");
        }
        // Control frames share the helper.
        let mut w = Trickle {
            out: Vec::new(),
            step: 2,
        };
        write_frame(&mut w, FrameKind::Heartbeat, &encode_generation(9)).unwrap();
        let mut body = Vec::new();
        assert_eq!(
            read_frame(&mut &w.out[..], &mut body).unwrap(),
            FrameKind::Heartbeat
        );
        assert_eq!(decode_generation(&body).unwrap(), 9);
    }

    #[test]
    fn torn_frame_surfaces_eof_never_a_hang() {
        // A peer that dies mid-frame leaves a prefix on the stream. Every
        // truncation point — inside the header, header-only, or mid-body —
        // must surface UnexpectedEof from the reader immediately.
        let mut wire = Vec::new();
        write_data_frame(&mut wire, 3, &WireBuf::from_f32(&[1.0, 2.0])).unwrap();
        for cut in [
            1,
            4,
            FRAME_HEADER_BYTES,
            FRAME_HEADER_BYTES + 3,
            wire.len() - 1,
        ] {
            let mut body = Vec::new();
            assert_eq!(
                read_frame(&mut &wire[..cut], &mut body).unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut}"
            );
        }
        // The header-first reader reports the same truncations.
        assert_eq!(
            read_frame_header(&mut &wire[..3]).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        let (kind, len) = read_frame_header(&mut &wire[..]).unwrap();
        assert_eq!(kind, FrameKind::Data);
        assert_eq!(len, DATA_BODY_OVERHEAD + 8);
    }

    #[test]
    fn heartbeat_body_roundtrip() {
        assert_eq!(
            decode_generation(&encode_generation(u64::MAX)).unwrap(),
            u64::MAX
        );
        assert!(decode_generation(&[0u8; 7]).is_err());
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Heartbeat, &encode_generation(2)).unwrap();
        let mut body = Vec::new();
        assert_eq!(
            read_frame(&mut &wire[..], &mut body).unwrap(),
            FrameKind::Heartbeat
        );
        assert_eq!(decode_generation(&body).unwrap(), 2);
    }
}

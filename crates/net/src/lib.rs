//! # dear-net — real TCP transport and multi-process cluster runtime
//!
//! Everything the rest of the repository does over the in-process
//! [`LocalFabric`](dear_collectives::LocalFabric) — ring / recursive
//! halving-doubling / tree collectives, the DeAR comm thread, full
//! training — also runs unchanged over this crate's [`TcpEndpoint`],
//! because both implement the same
//! [`Transport`](dear_collectives::Transport) trait. The pieces:
//!
//! - [`TcpEndpoint`] — one rank's full mesh of TCP peer connections, with
//!   rank-0 rendezvous, per-peer writer/reader threads, bounded outboxes,
//!   pooled buffers, and timeouts that surface as
//!   [`CollectiveError`](dear_collectives::CollectiveError) instead of
//!   hangs (see [`endpoint`] for the protocol);
//! - [`NetConfig`] — explicit or `torchrun`-style environment
//!   configuration (`RANK`, `WORLD_SIZE`, `MASTER_ADDR`, `MASTER_PORT`,
//!   `DEAR_*` knobs);
//! - [`tcp_loopback`] — a whole cluster over `127.0.0.1` inside one
//!   process, for tests and benches;
//! - [`launch_world`] and the `dear-launch` binary — spawn and supervise
//!   `N` worker processes, propagating the first failure;
//! - [`run_demo_worker`] — a complete DeAR training run over TCP, used by
//!   `dear-launch --demo` and the smoke tests.
//!
//! # Example
//!
//! ```
//! use dear_collectives::{ring_all_reduce, ReduceOp, Transport};
//! use dear_net::tcp_loopback;
//!
//! let endpoints = tcp_loopback(4).unwrap();
//! std::thread::scope(|s| {
//!     for ep in &endpoints {
//!         s.spawn(move || {
//!             let mut grad = vec![ep.rank() as f32; 16];
//!             ring_all_reduce(ep, &mut grad, ReduceOp::Sum).unwrap(); // real sockets
//!             assert_eq!(grad, vec![6.0; 16]); // 0+1+2+3
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
pub mod chaos;
mod config;
mod demo;
pub mod endpoint;
pub mod frame;
mod launch;
mod loopback;
pub mod shm;
pub mod tiered;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan};
pub use config::{DemoOptions, NetConfig, NetError};
pub use demo::{hash_params, run_demo_host, run_demo_on, run_demo_worker, DemoSummary};
pub use endpoint::{PeerStats, TcpEndpoint};
pub use launch::{
    free_port, launch_world, launch_world_elastic, ElasticOutcome, LaunchOptions, RestartPolicy,
    WorldGuard, WorldOutcome,
};
pub use loopback::{tcp_loopback, tcp_loopback_with};
pub use shm::{ShmEndpoint, ShmFabric};
pub use tiered::{probe_alpha_beta, tiered_loopback, tiered_loopback_with, TieredEndpoint};

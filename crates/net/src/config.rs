//! Endpoint configuration and the `dear-net` error type.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use dear_collectives::DType;
use dear_core::trace::TRACE_ENV;
use dear_core::ParallelismStrategy;

/// Demo-worker behaviour knobs (checkpointing, failure injection, tuning
/// windows), carried inside [`NetConfig`] so that
/// [`NetConfig::from_env`] is the **only** place in this crate that reads
/// the environment — everything downstream takes the typed struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemoOptions {
    /// Rank that dies abruptly mid-training (failure-propagation tests),
    /// or `None` for a healthy run. Env: `DEAR_DEMO_EXIT_RANK`.
    pub exit_rank: Option<usize>,
    /// Step at which [`DemoOptions::exit_rank`] dies.
    /// Env: `DEAR_DEMO_EXIT_AT_STEP`.
    pub exit_at_step: u64,
    /// World generation the injection fires in (an elastic restart bumps
    /// the generation past it, so the relaunched world survives).
    /// Env: `DEAR_DEMO_EXIT_GEN`.
    pub exit_gen: u64,
    /// Checkpoint directory, or `None` to disable checkpointing.
    /// Env: `DEAR_CKPT_DIR`.
    pub ckpt_dir: Option<String>,
    /// Steps between checkpoints (min 1). Env: `DEAR_CKPT_EVERY`.
    pub ckpt_every: u64,
    /// Steps per throughput-tuning window, 0 = off.
    /// Env: `DEAR_TUNE_WINDOW`.
    pub tune_window: u64,
}

impl Default for DemoOptions {
    fn default() -> Self {
        DemoOptions {
            exit_rank: None,
            exit_at_step: 0,
            exit_gen: 0,
            ckpt_dir: None,
            ckpt_every: 5,
            tune_window: 0,
        }
    }
}

/// Environment variable naming follows the `torchrun` convention (`RANK`,
/// `WORLD_SIZE`, `MASTER_ADDR`, `MASTER_PORT`) plus `DEAR_*` knobs for the
/// timeout/backoff behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of ranks in the job.
    pub world: usize,
    /// This process's rank, or `None` to let the master assign one (rank 0
    /// — the master — must always be explicit).
    pub rank: Option<usize>,
    /// The rendezvous address (`host:port`) — rank 0's listener.
    pub master_addr: String,
    /// Host this rank's own listener binds (and advertises, unless it is
    /// `0.0.0.0`, in which case peers are told the address the master
    /// observed).
    pub listen_host: String,
    /// Total budget for establishing one outgoing connection, including
    /// retries (exponential backoff from [`NetConfig::CONNECT_BACKOFF_MIN`]
    /// to [`NetConfig::CONNECT_BACKOFF_MAX`]).
    pub connect_timeout: Duration,
    /// Per-socket read/write deadline during the rendezvous handshake.
    pub handshake_timeout: Duration,
    /// Deadline for [`send`] when a peer's outbox stays full (backpressure
    /// from a stalled peer); also the socket write deadline of the writer
    /// threads.
    ///
    /// [`send`]: dear_collectives::Transport::send
    pub send_timeout: Duration,
    /// Deadline for [`recv`]; `None` blocks forever. Defaults to 30 s so a
    /// dead peer surfaces as [`CollectiveError::Timeout`] instead of a hang.
    ///
    /// [`recv`]: dear_collectives::Transport::recv
    /// [`CollectiveError::Timeout`]: dear_collectives::CollectiveError::Timeout
    pub recv_timeout: Option<Duration>,
    /// Bounded per-peer outbox depth, in frames. `send` only blocks once
    /// this many frames are queued on one peer — enough that segmented
    /// collectives never stall the comm thread in the steady state.
    pub outbox_frames: usize,
    /// Heartbeat probe interval, or `None` to disable failure detection.
    /// When enabled, a monitor thread sends a liveness frame to every peer
    /// each interval and declares a peer dead once nothing (data or
    /// heartbeat) has arrived from it for
    /// [`NetConfig::heartbeat_miss_budget`] consecutive intervals.
    pub heartbeat_interval: Option<Duration>,
    /// Consecutive silent intervals tolerated before a peer is declared
    /// dead and the endpoint aborts.
    pub heartbeat_miss_budget: u32,
    /// The world generation (restart attempt number). Stamped on every
    /// data frame and checked by both the rendezvous handshake and the
    /// data path so traffic from an earlier incarnation of a restarted
    /// world is rejected instead of corrupting collectives.
    pub generation: u64,
    /// Wire dtype for the training data path (`f32`/`bf16`/`f16`): the
    /// mixed-precision knob, passed through to the run's
    /// [`SegmentConfig`](dear_collectives::SegmentConfig). Frames are
    /// self-describing, so peers on different settings still interoperate.
    /// Env: `DEAR_WIRE_DTYPE`.
    pub wire: DType,
    /// How long a resize rendezvous master waits for survivor HELLOs
    /// before closing the member list (in-place elastic resize; see
    /// `TcpEndpoint::reconfigure`). Every straggler that misses the window
    /// is treated as lost. Env: `DEAR_RESIZE_WINDOW_MS`.
    pub resize_window: Duration,
    /// Whether a peer failure should be survived by reconfiguring the
    /// world in place (shrink + continue) instead of failing the process
    /// and relying on a supervised restart. Env: `DEAR_ELASTIC_RESIZE`
    /// (`1`/`true` to enable).
    pub elastic_resize: bool,
    /// Physical-host identity of this rank, advertised in the HELLO so the
    /// master can republish host placement in the WELCOME and co-located
    /// ranks can find each other (shared-memory tier, topology-aware
    /// hierarchical groups). `None` means "not configured": the master
    /// assigns a unique pseudo-host per rank ([`NetConfig::UNKNOWN_HOST`]
    /// on the wire), which degrades gracefully to all-TCP.
    /// Env: `DEAR_HOST_ID`.
    pub host_id: Option<u64>,
    /// CPU core the per-peer comm threads (readers and writers) are pinned
    /// to, or `None` for no pinning. On a dedicated comm core this keeps
    /// the byte hot path's cache state warm across frames; best-effort —
    /// an impossible core is ignored, not an error.
    /// Env: `DEAR_PIN_COMM`; CLI: `--pin-comm CORE`.
    pub pin_comm: Option<usize>,
    /// Largest per-buffer capacity the endpoint buffer pools retain
    /// (bytes, min 1); recycled buffers above it are shrunk on return so
    /// one outsized collective cannot pin high-water memory for the run.
    /// Env: `DEAR_POOL_MAX_BUF`.
    pub pool_max_buf_bytes: usize,
    /// How model state is partitioned across the world: classic data
    /// parallelism (`ddp`, the default) or ZeRO-style optimizer-state
    /// sharding (`zero1`/`zero2`) on the same decoupled pipeline. Passed
    /// through to the run's
    /// [`TrainConfig::strategy`](dear_core::TrainConfig).
    /// Env: `DEAR_STRATEGY`; CLI: `--strategy NAME`.
    pub strategy: ParallelismStrategy,
    /// Chrome-trace output path prefix, or `None` to leave the recorder
    /// off. The launch layer applies it via
    /// [`trace::configure`](dear_core::trace::configure); each rank then
    /// dumps `<prefix>.rank<R>.json`. Env: `DEAR_TRACE`; CLI: `--trace`.
    pub trace: Option<PathBuf>,
    /// Demo-worker knobs (checkpoints, failure injection, tuning windows).
    pub demo: DemoOptions,
}

impl NetConfig {
    /// First retry delay when a connect is refused (the peer's listener is
    /// not up yet).
    pub const CONNECT_BACKOFF_MIN: Duration = Duration::from_millis(10);
    /// Backoff cap; doubling stops here.
    pub const CONNECT_BACKOFF_MAX: Duration = Duration::from_millis(500);
    /// How many deterministically derived ports a resize walks before
    /// giving up: the first derivation can be owned by an unrelated
    /// process, in which case every survivor fails the handshake against
    /// the foreign listener and advances to the next derived port (the
    /// same sequence on every survivor, so they re-converge without
    /// agreeing on who survived first).
    pub const RESIZE_PORT_PROBES: u32 = 3;
    /// Wire sentinel a rank's HELLO carries when [`NetConfig::host_id`] is
    /// unset. The master never republishes it: each unknown rank gets a
    /// unique pseudo-host (`u64::MAX - 1 - rank`, distinct from this
    /// sentinel) so "unknown" can never read as "co-located".
    pub const UNKNOWN_HOST: u64 = u64::MAX;

    /// A configuration for `world` ranks with rendezvous at `master_addr`,
    /// defaulting to loopback-friendly timeouts (10 s connect/handshake,
    /// 30 s send/recv, 128-frame outboxes).
    #[must_use]
    pub fn new(world: usize, rank: usize, master_addr: impl Into<String>) -> Self {
        NetConfig {
            world,
            rank: Some(rank),
            master_addr: master_addr.into(),
            listen_host: "127.0.0.1".to_string(),
            connect_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(10),
            send_timeout: Duration::from_secs(30),
            recv_timeout: Some(Duration::from_secs(30)),
            outbox_frames: 128,
            heartbeat_interval: Some(Duration::from_secs(1)),
            heartbeat_miss_budget: 5,
            generation: 0,
            wire: DType::F32,
            resize_window: Duration::from_secs(2),
            elastic_resize: false,
            host_id: None,
            pin_comm: None,
            pool_max_buf_bytes: crate::endpoint::POOL_MAX_BUF_BYTES,
            strategy: ParallelismStrategy::Ddp,
            trace: None,
            demo: DemoOptions::default(),
        }
    }

    /// Sets the host this rank's listener binds.
    #[must_use]
    pub fn with_listen_host(mut self, host: impl Into<String>) -> Self {
        self.listen_host = host.into();
        self
    }

    /// Sets the connect **and** handshake deadlines (they travel together:
    /// a rendezvous that out-waits its connects is never useful).
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self.handshake_timeout = timeout;
        self
    }

    /// Sets the send deadline (outbox backpressure + socket writes).
    #[must_use]
    pub fn with_send_timeout(mut self, timeout: Duration) -> Self {
        self.send_timeout = timeout;
        self
    }

    /// Sets the recv deadline; `None` blocks forever.
    #[must_use]
    pub fn with_recv_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Sets the per-peer outbox depth (min 1 frame).
    #[must_use]
    pub fn with_outbox_frames(mut self, frames: usize) -> Self {
        self.outbox_frames = frames.max(1);
        self
    }

    /// Configures the failure detector: probe every `interval` (`None`
    /// disables it) and declare a peer dead after `miss_budget` silent
    /// intervals (min 1).
    #[must_use]
    pub fn with_heartbeat(mut self, interval: Option<Duration>, miss_budget: u32) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_miss_budget = miss_budget.max(1);
        self
    }

    /// Sets the world generation (elastic restart number).
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Sets the resize-rendezvous membership window (min 1 ms).
    #[must_use]
    pub fn with_resize_window(mut self, window: Duration) -> Self {
        self.resize_window = window.max(Duration::from_millis(1));
        self
    }

    /// Enables or disables surviving peer loss by in-place world resize.
    #[must_use]
    pub fn with_elastic_resize(mut self, enabled: bool) -> Self {
        self.elastic_resize = enabled;
        self
    }

    /// Sets this rank's physical-host identity (`None` = not configured;
    /// the master then assigns a unique pseudo-host, i.e. no co-location).
    #[must_use]
    pub fn with_host_id(mut self, host_id: Option<u64>) -> Self {
        self.host_id = host_id;
        self
    }

    /// Selects the data-path wire dtype (the mixed-precision knob).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not numeric — `u8` is an opaque compressor
    /// container, not a training wire format.
    #[must_use]
    pub fn with_wire(mut self, wire: DType) -> Self {
        assert!(
            wire.is_numeric(),
            "wire dtype must be numeric (f32/bf16/f16), not {wire}"
        );
        self.wire = wire;
        self
    }

    /// Pins the per-peer comm threads to `core` (`None` = no pinning).
    #[must_use]
    pub fn with_pin_comm(mut self, core: Option<usize>) -> Self {
        self.pin_comm = core;
        self
    }

    /// Sets the largest per-buffer capacity the buffer pools retain
    /// (min 1 byte).
    #[must_use]
    pub fn with_pool_max_buf_bytes(mut self, bytes: usize) -> Self {
        self.pool_max_buf_bytes = bytes.max(1);
        self
    }

    /// Selects the parallelism strategy (`ddp`/`zero1`/`zero2`).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ParallelismStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the Chrome-trace output path prefix (`None` = recorder off).
    #[must_use]
    pub fn with_trace(mut self, trace: Option<PathBuf>) -> Self {
        self.trace = trace;
        self
    }

    /// Replaces the demo-worker options.
    #[must_use]
    pub fn with_demo(mut self, demo: DemoOptions) -> Self {
        self.demo = demo;
        self
    }

    /// Builds a configuration from the environment — **the only env reader
    /// in this crate**; every other entry point takes the typed struct.
    ///
    /// Required: `RANK`, `WORLD_SIZE`. Rendezvous: `MASTER_ADDR` (default
    /// `127.0.0.1`), `MASTER_PORT` (default 29400). Endpoint knobs:
    /// `DEAR_LISTEN_HOST`, `DEAR_CONNECT_TIMEOUT_MS`,
    /// `DEAR_SEND_TIMEOUT_MS`, `DEAR_RECV_TIMEOUT_MS` (0 disables the recv
    /// deadline), `DEAR_OUTBOX_FRAMES`, `DEAR_HEARTBEAT_MS` (0 disables
    /// the failure detector), `DEAR_HEARTBEAT_MISSES`, `DEAR_GENERATION`
    /// (set by the elastic launcher to the restart attempt number),
    /// `DEAR_WIRE_DTYPE` (`f32`/`bf16`/`f16`, the mixed-precision knob),
    /// `DEAR_RESIZE_WINDOW_MS` (membership window of an in-place resize
    /// rendezvous), `DEAR_ELASTIC_RESIZE` (`1` to survive peer loss by
    /// shrinking the world in place instead of restarting), and
    /// `DEAR_HOST_ID` (this rank's physical-host identity, for the
    /// shared-memory tier; unset = every rank on its own pseudo-host),
    /// `DEAR_PIN_COMM` (CPU core to pin the comm threads to; unset = no
    /// pinning), `DEAR_POOL_MAX_BUF` (largest per-buffer capacity the
    /// buffer pools retain, in bytes), `DEAR_STRATEGY`
    /// (`ddp`/`zero1`/`zero2`, the parallelism strategy; an unknown name
    /// is a typed [`NetError::Config`], not a silent fallback), and
    /// `DEAR_TRACE` (Chrome-trace path prefix; empty/unset = recorder
    /// off).
    /// Demo-worker knobs (see [`DemoOptions`]): `DEAR_DEMO_EXIT_RANK`,
    /// `DEAR_DEMO_EXIT_AT_STEP`, `DEAR_DEMO_EXIT_GEN`, `DEAR_CKPT_DIR`,
    /// `DEAR_CKPT_EVERY`, `DEAR_TUNE_WINDOW`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Config`] when a required variable is missing or
    /// unparsable.
    pub fn from_env() -> Result<Self, NetError> {
        fn var(name: &str) -> Result<String, NetError> {
            std::env::var(name).map_err(|_| NetError::Config(format!("{name} is not set")))
        }
        fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, NetError> {
            raw.parse()
                .map_err(|_| NetError::Config(format!("{name}={raw} is not a valid value")))
        }
        let rank: usize = parse("RANK", &var("RANK")?)?;
        let world: usize = parse("WORLD_SIZE", &var("WORLD_SIZE")?)?;
        if world == 0 || rank >= world {
            return Err(NetError::Config(format!(
                "RANK={rank} out of range for WORLD_SIZE={world}"
            )));
        }
        let host = std::env::var("MASTER_ADDR").unwrap_or_else(|_| "127.0.0.1".to_string());
        let port = std::env::var("MASTER_PORT").unwrap_or_else(|_| "29400".to_string());
        let port: u16 = parse("MASTER_PORT", &port)?;
        let mut cfg = NetConfig::new(world, rank, format!("{host}:{port}"));
        if let Ok(listen) = std::env::var("DEAR_LISTEN_HOST") {
            cfg.listen_host = listen;
        }
        if let Ok(ms) = std::env::var("DEAR_CONNECT_TIMEOUT_MS") {
            cfg.connect_timeout = Duration::from_millis(parse("DEAR_CONNECT_TIMEOUT_MS", &ms)?);
            cfg.handshake_timeout = cfg.connect_timeout;
        }
        if let Ok(ms) = std::env::var("DEAR_SEND_TIMEOUT_MS") {
            cfg.send_timeout = Duration::from_millis(parse("DEAR_SEND_TIMEOUT_MS", &ms)?);
        }
        if let Ok(ms) = std::env::var("DEAR_RECV_TIMEOUT_MS") {
            let ms: u64 = parse("DEAR_RECV_TIMEOUT_MS", &ms)?;
            cfg.recv_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(n) = std::env::var("DEAR_OUTBOX_FRAMES") {
            cfg.outbox_frames = parse::<usize>("DEAR_OUTBOX_FRAMES", &n)?.max(1);
        }
        if let Ok(ms) = std::env::var("DEAR_HEARTBEAT_MS") {
            let ms: u64 = parse("DEAR_HEARTBEAT_MS", &ms)?;
            cfg.heartbeat_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(n) = std::env::var("DEAR_HEARTBEAT_MISSES") {
            cfg.heartbeat_miss_budget = parse::<u32>("DEAR_HEARTBEAT_MISSES", &n)?.max(1);
        }
        if let Ok(g) = std::env::var("DEAR_GENERATION") {
            cfg.generation = parse("DEAR_GENERATION", &g)?;
        }
        if let Ok(ms) = std::env::var("DEAR_RESIZE_WINDOW_MS") {
            let ms: u64 = parse("DEAR_RESIZE_WINDOW_MS", &ms)?;
            cfg.resize_window = Duration::from_millis(ms.max(1));
        }
        if let Ok(v) = std::env::var("DEAR_ELASTIC_RESIZE") {
            cfg.elastic_resize = matches!(v.as_str(), "1" | "true" | "TRUE" | "on");
        }
        if let Ok(h) = std::env::var("DEAR_HOST_ID") {
            cfg.host_id = Some(parse("DEAR_HOST_ID", &h)?);
        }
        if let Ok(c) = std::env::var("DEAR_PIN_COMM") {
            cfg.pin_comm = Some(parse("DEAR_PIN_COMM", &c)?);
        }
        if let Ok(b) = std::env::var("DEAR_POOL_MAX_BUF") {
            cfg.pool_max_buf_bytes = parse::<usize>("DEAR_POOL_MAX_BUF", &b)?.max(1);
        }
        if let Ok(name) = std::env::var("DEAR_WIRE_DTYPE") {
            let wire = DType::parse(&name).ok_or_else(|| {
                NetError::Config(format!("DEAR_WIRE_DTYPE={name} is not a known dtype"))
            })?;
            if !wire.is_numeric() {
                return Err(NetError::Config(format!(
                    "DEAR_WIRE_DTYPE={name} is not a numeric wire format"
                )));
            }
            cfg.wire = wire;
        }
        if let Ok(name) = std::env::var("DEAR_STRATEGY") {
            cfg.strategy = name
                .parse::<ParallelismStrategy>()
                .map_err(|e| NetError::Config(format!("DEAR_STRATEGY: {e}")))?;
        }
        if let Ok(path) = std::env::var(TRACE_ENV) {
            if !path.is_empty() {
                cfg.trace = Some(PathBuf::from(path));
            }
        }
        if let Ok(r) = std::env::var("DEAR_DEMO_EXIT_RANK") {
            cfg.demo.exit_rank = Some(parse("DEAR_DEMO_EXIT_RANK", &r)?);
        }
        if let Ok(s) = std::env::var("DEAR_DEMO_EXIT_AT_STEP") {
            cfg.demo.exit_at_step = parse("DEAR_DEMO_EXIT_AT_STEP", &s)?;
        }
        if let Ok(g) = std::env::var("DEAR_DEMO_EXIT_GEN") {
            cfg.demo.exit_gen = parse("DEAR_DEMO_EXIT_GEN", &g)?;
        }
        if let Ok(dir) = std::env::var("DEAR_CKPT_DIR") {
            cfg.demo.ckpt_dir = Some(dir);
        }
        if let Ok(n) = std::env::var("DEAR_CKPT_EVERY") {
            cfg.demo.ckpt_every = parse::<u64>("DEAR_CKPT_EVERY", &n)?.max(1);
        }
        if let Ok(n) = std::env::var("DEAR_TUNE_WINDOW") {
            cfg.demo.tune_window = parse("DEAR_TUNE_WINDOW", &n)?;
        }
        Ok(cfg)
    }
}

/// Errors raised while establishing or tearing down a TCP cluster (runtime
/// send/recv failures surface as
/// [`CollectiveError`](dear_collectives::CollectiveError) instead, through
/// the `Transport` trait).
#[derive(Debug)]
pub enum NetError {
    /// An I/O operation failed; `context` says which.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A bounded wait expired.
    Timeout {
        /// What was being waited for.
        context: String,
        /// The configured deadline.
        after: Duration,
    },
    /// The remote spoke the protocol incorrectly (bad frame, rank clash…).
    Protocol(String),
    /// The configuration (flags or environment) is invalid.
    Config(String),
}

impl NetError {
    /// Wraps an I/O error with context.
    #[must_use]
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        NetError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "{context}: {source}"),
            NetError::Timeout { context, after } => {
                write!(f, "timed out after {after:?} while {context}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NetConfig::new(4, 1, "127.0.0.1:29400");
        assert_eq!(cfg.world, 4);
        assert_eq!(cfg.rank, Some(1));
        assert!(cfg.recv_timeout.is_some());
        assert!(cfg.outbox_frames > 0);
        assert_eq!(cfg.heartbeat_interval, Some(Duration::from_secs(1)));
        assert!(cfg.heartbeat_miss_budget >= 1);
        assert_eq!(cfg.generation, 0);
        assert_eq!(cfg.resize_window, Duration::from_secs(2));
        assert!(!cfg.elastic_resize, "resize is opt-in");
        assert_eq!(cfg.host_id, None, "host identity is opt-in");
        assert_eq!(cfg.pin_comm, None, "core pinning is opt-in");
        assert!(cfg.pool_max_buf_bytes >= 1 << 20);
        assert_eq!(cfg.strategy, ParallelismStrategy::Ddp, "DDP is the default");
        assert_eq!(cfg.trace, None, "tracing is opt-in");
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = NetConfig::new(4, 0, "10.0.0.1:29400")
            .with_listen_host("0.0.0.0")
            .with_connect_timeout(Duration::from_secs(3))
            .with_send_timeout(Duration::from_secs(7))
            .with_recv_timeout(None)
            .with_outbox_frames(0) // clamped to 1
            .with_heartbeat(Some(Duration::from_millis(250)), 0) // misses clamped
            .with_generation(2)
            .with_resize_window(Duration::ZERO) // clamped to 1 ms
            .with_elastic_resize(true)
            .with_host_id(Some(42))
            .with_pin_comm(Some(0))
            .with_pool_max_buf_bytes(0) // clamped to 1
            .with_wire(DType::Bf16)
            .with_strategy(ParallelismStrategy::Zero2)
            .with_trace(Some(PathBuf::from("/tmp/trace/dear")))
            .with_demo(DemoOptions {
                exit_rank: Some(1),
                exit_at_step: 3,
                ckpt_dir: Some("/tmp/ck".into()),
                tune_window: 8,
                ..DemoOptions::default()
            });
        assert_eq!(cfg.listen_host, "0.0.0.0");
        assert_eq!(cfg.connect_timeout, Duration::from_secs(3));
        assert_eq!(cfg.handshake_timeout, Duration::from_secs(3));
        assert_eq!(cfg.send_timeout, Duration::from_secs(7));
        assert_eq!(cfg.recv_timeout, None);
        assert_eq!(cfg.outbox_frames, 1);
        assert_eq!(cfg.heartbeat_interval, Some(Duration::from_millis(250)));
        assert_eq!(cfg.heartbeat_miss_budget, 1);
        assert_eq!(cfg.generation, 2);
        assert_eq!(cfg.resize_window, Duration::from_millis(1));
        assert!(cfg.elastic_resize);
        assert_eq!(cfg.host_id, Some(42));
        assert_eq!(cfg.pin_comm, Some(0));
        assert_eq!(cfg.pool_max_buf_bytes, 1);
        assert_eq!(cfg.wire, DType::Bf16);
        assert_eq!(cfg.strategy, ParallelismStrategy::Zero2);
        assert_eq!(cfg.trace, Some(PathBuf::from("/tmp/trace/dear")));
        assert_eq!(cfg.demo.exit_rank, Some(1));
        assert_eq!(cfg.demo.exit_at_step, 3);
        assert_eq!(cfg.demo.ckpt_every, 5, "untouched fields keep defaults");
        assert_eq!(cfg.demo.tune_window, 8);
    }

    #[test]
    fn default_wire_is_f32_and_demo_is_off() {
        let cfg = NetConfig::new(2, 0, "127.0.0.1:29400");
        assert_eq!(cfg.wire, DType::F32);
        assert_eq!(cfg.demo, DemoOptions::default());
        assert_eq!(cfg.demo.exit_rank, None);
        assert_eq!(cfg.demo.ckpt_dir, None);
        assert_eq!(cfg.demo.tune_window, 0);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn opaque_wire_dtype_is_rejected_by_the_builder() {
        let _ = NetConfig::new(2, 0, "127.0.0.1:29400").with_wire(DType::U8);
    }

    #[test]
    fn dear_strategy_env_round_trips_and_rejects_garbage() {
        // One test owns all the env mutation (tests share the process, so
        // interleaving set/remove across tests would race): every runnable
        // strategy round-trips through `DEAR_STRATEGY`, spelling variants
        // land on the canonical value, an unknown name is a typed config
        // error naming the variable, and `DEAR_TRACE` rides along into the
        // typed `trace` field.
        std::env::set_var("RANK", "0");
        std::env::set_var("WORLD_SIZE", "2");
        for (raw, want) in [
            ("ddp", ParallelismStrategy::Ddp),
            ("zero1", ParallelismStrategy::Zero1),
            ("ZERO-1", ParallelismStrategy::Zero1),
            ("zero2", ParallelismStrategy::Zero2),
            ("Zero-2", ParallelismStrategy::Zero2),
        ] {
            std::env::set_var("DEAR_STRATEGY", raw);
            let cfg = NetConfig::from_env().expect("valid strategy must parse");
            assert_eq!(cfg.strategy, want, "DEAR_STRATEGY={raw}");
            // And the canonical spelling round-trips exactly.
            assert_eq!(
                cfg.strategy
                    .as_str()
                    .parse::<ParallelismStrategy>()
                    .unwrap(),
                want
            );
        }
        std::env::set_var("DEAR_STRATEGY", "zero9");
        let err = NetConfig::from_env().expect_err("unknown strategy must be rejected");
        match &err {
            NetError::Config(msg) => {
                assert!(
                    msg.contains("DEAR_STRATEGY"),
                    "error names the variable: {msg}"
                );
                assert!(msg.contains("zero9"), "error echoes the bad value: {msg}");
            }
            other => panic!("expected NetError::Config, got {other:?}"),
        }
        std::env::remove_var("DEAR_STRATEGY");
        std::env::set_var("DEAR_TRACE", "/tmp/tr/prefix");
        let cfg = NetConfig::from_env().unwrap();
        assert_eq!(cfg.trace, Some(PathBuf::from("/tmp/tr/prefix")));
        std::env::set_var("DEAR_TRACE", "");
        let cfg = NetConfig::from_env().unwrap();
        assert_eq!(cfg.trace, None, "empty DEAR_TRACE keeps the recorder off");
        std::env::remove_var("DEAR_TRACE");
        std::env::remove_var("RANK");
        std::env::remove_var("WORLD_SIZE");
    }

    #[test]
    fn error_display_carries_context() {
        let e = NetError::io(
            "connecting to 127.0.0.1:1",
            io::Error::new(io::ErrorKind::ConnectionRefused, "refused"),
        );
        assert!(e.to_string().contains("127.0.0.1:1"));
        let t = NetError::Timeout {
            context: "waiting for HELLO".into(),
            after: Duration::from_secs(1),
        };
        assert!(t.to_string().contains("waiting for HELLO"));
    }
}

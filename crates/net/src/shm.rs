//! `ShmEndpoint` — the intra-node shared-memory implementation of
//! [`Transport`].
//!
//! Ranks that share a physical host do not need a NIC between them: this
//! module gives co-located ranks (threads of one process, the deployment
//! model of `dear-launch --hosts`) a fabric of **single-producer /
//! single-consumer ring buffers**. Each directed pair of ranks owns one
//! ring of sequence-numbered slots (the classic bounded-queue design):
//! the sender writes a slot and releases it by bumping the slot's sequence
//! word, the receiver acquires it by reading that word — the data path
//! never takes a lock shared between sender and receiver, so latency is a
//! couple of cache-line transfers instead of a socket round-trip.
//!
//! The endpoint speaks the same protocol-level contract as
//! [`crate::TcpEndpoint`]:
//!
//! - every message is stamped with the **world generation** at send time
//!   and checked at receive time, so traffic from a previous incarnation
//!   of a resized world surfaces as
//!   [`CollectiveError::StaleGeneration`] instead of corrupting a
//!   collective;
//! - a **heartbeat** thread per endpoint refreshes a liveness timestamp;
//!   a receiver blocked on a peer whose timestamp goes stale for the miss
//!   budget declares it wedged with [`CollectiveError::Aborted`], while a
//!   gracefully dropped endpoint surfaces as
//!   [`CollectiveError::Disconnected`];
//! - `reconfigure` survives member loss in place: survivors meet at an
//!   **epoch gate** (a barrier counted over survivors only, so a dead
//!   member cannot block it), drain every stale-generation message out of
//!   their rings, and renumber — the exact contract the TCP endpoint's
//!   resize rendezvous provides, minus the sockets.
//!
//! A [`ShmFabric`] spans one process. The tiered transport
//! ([`crate::TieredEndpoint`]) composes one fabric per host with a TCP
//! mesh between hosts, remapping the fabric's global ranks from the resize
//! rendezvous' WELCOME tables after an elastic resize.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dear_collectives::{CollectiveError, Message, Transport, WorldChange};

use crate::config::NetConfig;

/// Buffers kept per endpoint pool; matches the TCP endpoint's bound.
const POOL_CAP: usize = 64;

/// Iterations of busy-spinning before a waiter starts yielding between
/// polls — long enough to catch a peer already in its send, short enough
/// not to burn a core against a slow one.
const SPIN_BUDGET: u32 = 256;

/// Iterations of `yield_now` after the spin budget: on oversubscribed
/// hosts (more rank threads than cores) the producer cannot progress
/// while the consumer spins, and a sleep would quantize every hop to the
/// sleep period — yielding hands the core straight to the peer instead,
/// which is what makes small-message shm latency beat the socket path.
const YIELD_BUDGET: u32 = 4096;

/// Sleep between polls once both budgets are exhausted (the peer is
/// genuinely slow, not merely descheduled). Coarse liveness checks
/// (heartbeats, deadlines) happen at this granularity.
const POLL_SLEEP: Duration = Duration::from_micros(50);

/// One step of the spin → yield → sleep wait ladder shared by the send
/// (full ring) and recv (empty ring) paths.
fn wait_step(spins: &mut u32) {
    if *spins < SPIN_BUDGET {
        *spins += 1;
        std::hint::spin_loop();
    } else if *spins < SPIN_BUDGET + YIELD_BUDGET {
        *spins += 1;
        std::thread::yield_now();
    } else {
        std::thread::sleep(POLL_SLEEP);
    }
}

/// A message as stored in a ring slot: the payload plus the sender's world
/// generation (the shm analog of the TCP data frame's generation stamp).
struct ShmMsg {
    generation: u64,
    msg: Message,
}

/// One slot of a ring: a sequence word that hands ownership back and forth
/// between producer and consumer, and the payload cell it guards.
struct RingSlot {
    seq: AtomicUsize,
    msg: UnsafeCell<MaybeUninit<ShmMsg>>,
}

/// A bounded single-producer / single-consumer queue of [`ShmMsg`]s.
///
/// Sequence-numbered slots: slot `i` is writable by the producer when
/// `seq == pos` (its turn `pos`, where `pos % cap == i`) and readable by
/// the consumer when `seq == pos + 1`. Producer and consumer each own one
/// cursor and never touch the other's, so the data path is wait-free on
/// both sides; the `produce`/`consume` mutexes only serialize *same-side*
/// aliasing (two threads misusing one endpoint), never sender against
/// receiver.
struct SpscRing {
    mask: usize,
    slots: Box<[RingSlot]>,
    /// Producer cursor (next position to write).
    tail: AtomicUsize,
    /// Consumer cursor (next position to read).
    head: AtomicUsize,
    /// Serializes producers (one logical producer; misuse guard).
    produce: Mutex<()>,
    /// Serializes consumers (one logical consumer; misuse guard).
    consume: Mutex<()>,
}

// SAFETY: the sequence protocol makes every `msg` cell exclusively owned
// by whichever side `seq` currently designates, with Release/Acquire
// pairs ordering the hand-off; the side mutexes prevent intra-side races.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    fn new(capacity: usize) -> SpscRing {
        let cap = capacity.next_power_of_two().max(2);
        SpscRing {
            mask: cap - 1,
            slots: (0..cap)
                .map(|i| RingSlot {
                    seq: AtomicUsize::new(i),
                    msg: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            produce: Mutex::new(()),
            consume: Mutex::new(()),
        }
    }

    /// Attempts to enqueue; gives `msg` back when the ring is full.
    fn try_push(&self, msg: ShmMsg) -> Result<(), ShmMsg> {
        let _own = self.produce.lock().expect("producer guard poisoned");
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        if slot.seq.load(Ordering::Acquire) != pos {
            return Err(msg); // consumer has not freed this slot yet
        }
        // SAFETY: `seq == pos` means the producer owns the cell.
        unsafe { (*slot.msg.get()).write(msg) };
        slot.seq.store(pos + 1, Ordering::Release);
        self.tail.store(pos + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Dequeues the head message if `want` accepts it (judging by the
    /// stamped generation); `None` when the ring is empty or the head is
    /// kept. Lets a resize drain stop exactly at the first post-resize
    /// message without a second handshake.
    fn try_pop_if(&self, want: impl FnOnce(u64) -> bool) -> Option<ShmMsg> {
        let _own = self.consume.lock().expect("consumer guard poisoned");
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None; // empty
        }
        // SAFETY: `seq == pos + 1` means the consumer owns the cell; the
        // generation field is ours to read either way, and the value is
        // only moved out when the predicate accepts it.
        let generation = unsafe { (*slot.msg.get()).assume_init_ref().generation };
        if !want(generation) {
            return None;
        }
        let msg = unsafe { (*slot.msg.get()).assume_init_read() };
        slot.seq.store(pos + self.mask + 1, Ordering::Release);
        self.head.store(pos + 1, Ordering::Relaxed);
        Some(msg)
    }

    fn try_pop(&self) -> Option<ShmMsg> {
        self.try_pop_if(|_| true)
    }
}

impl Drop for SpscRing {
    fn drop(&mut self) {
        // Undelivered messages still own heap payloads.
        while self.try_pop().is_some() {}
    }
}

/// Per-member liveness state, written by the member (or its heartbeat
/// thread) and read by every peer blocked on it.
struct MemberState {
    /// Set by `Drop`: the member left gracefully, nothing more is coming.
    departed: AtomicBool,
    /// Nanoseconds since the fabric epoch of the member's last heartbeat
    /// (or data-path activity).
    last_beat_ns: AtomicU64,
}

/// The epoch gate a resize synchronizes on: a reusable barrier counted
/// over the *survivors* of each resize round.
struct GateState {
    epoch: u64,
    arrived: usize,
    expected: Option<usize>,
}

struct ShmFabricInner {
    /// `rings[from][to]` carries messages between fabric slots; `None` on
    /// the diagonal.
    rings: Vec<Vec<Option<SpscRing>>>,
    members: Vec<MemberState>,
    gate: Mutex<GateState>,
    gate_cv: Condvar,
    /// Base instant for `last_beat_ns` timestamps.
    epoch: Instant,
    heartbeat_interval: Option<Duration>,
    heartbeat_miss_budget: u32,
}

impl ShmFabricInner {
    fn nanos_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn beat(&self, slot: usize) {
        self.members[slot]
            .last_beat_ns
            .store(self.nanos_since_epoch(), Ordering::Relaxed);
    }

    /// Whether `slot` has been silent past the miss allowance (never true
    /// with the failure detector disabled).
    fn is_wedged(&self, slot: usize) -> bool {
        let Some(interval) = self.heartbeat_interval else {
            return false;
        };
        let allowance = interval * self.heartbeat_miss_budget.max(1);
        let last = self.members[slot].last_beat_ns.load(Ordering::Relaxed);
        self.nanos_since_epoch().saturating_sub(last) > allowance.as_nanos() as u64
    }
}

/// A shared-memory fabric connecting the co-located ranks of one host.
/// See the [module docs](self).
///
/// # Examples
///
/// A whole world on one host, byte-identical to any other transport:
///
/// ```
/// use dear_net::ShmFabric;
/// use dear_collectives::{ring_all_reduce, ReduceOp, Transport};
///
/// let eps = ShmFabric::create(4);
/// std::thread::scope(|s| {
///     for ep in &eps {
///         s.spawn(move || {
///             let mut grad = vec![ep.rank() as f32 + 1.0; 64];
///             ring_all_reduce(ep, &mut grad, ReduceOp::Sum).unwrap();
///             assert_eq!(grad, vec![10.0; 64]);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct ShmFabric;

impl ShmFabric {
    /// Creates a fabric spanning a whole `world` of co-located ranks, with
    /// loopback-friendly defaults (30 s send deadline, failure detector
    /// on at 1 s × 5 misses, generation 0). Element `r` belongs to rank
    /// `r`.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    #[must_use]
    pub fn create(world: usize) -> Vec<ShmEndpoint> {
        let cfg = NetConfig::new(world, 0, "127.0.0.1:0");
        let members: Vec<usize> = (0..world).collect();
        Self::with_config(&cfg, &members)
    }

    /// Creates a fabric for the co-located subset `members` (global ranks,
    /// strictly ascending) of a world of `cfg.world` ranks, honouring the
    /// config's generation, send deadline, and failure detector. Element
    /// `i` belongs to global rank `members[i]`.
    ///
    /// Endpoints can only reach co-located peers; sends to off-host ranks
    /// return [`CollectiveError::InvalidRank`] — compose with a TCP mesh
    /// via [`crate::TieredEndpoint`] for the full world.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, unsorted, or lists a rank `>=
    /// cfg.world`.
    #[must_use]
    pub fn with_config(cfg: &NetConfig, members: &[usize]) -> Vec<ShmEndpoint> {
        assert!(!members.is_empty(), "a fabric needs at least one member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "fabric members must be strictly ascending global ranks"
        );
        assert!(
            *members.last().expect("non-empty") < cfg.world,
            "fabric member out of range for world {}",
            cfg.world
        );
        let n = members.len();
        let capacity = cfg.outbox_frames.max(2);
        let rings: Vec<Vec<Option<SpscRing>>> = (0..n)
            .map(|from| {
                (0..n)
                    .map(|to| (from != to).then(|| SpscRing::new(capacity)))
                    .collect()
            })
            .collect();
        let epoch = Instant::now();
        let inner = Arc::new(ShmFabricInner {
            rings,
            members: (0..n)
                .map(|_| MemberState {
                    departed: AtomicBool::new(false),
                    last_beat_ns: AtomicU64::new(0),
                })
                .collect(),
            gate: Mutex::new(GateState {
                epoch: 0,
                arrived: 0,
                expected: None,
            }),
            gate_cv: Condvar::new(),
            epoch,
            heartbeat_interval: cfg.heartbeat_interval,
            heartbeat_miss_budget: cfg.heartbeat_miss_budget,
        });
        members
            .iter()
            .enumerate()
            .map(|(slot, &rank)| {
                let mut peer_slots = vec![None; cfg.world];
                for (s, &m) in members.iter().enumerate() {
                    peer_slots[m] = Some(s);
                }
                let heartbeat = inner.heartbeat_interval.map(|interval| {
                    let stop = Arc::new(AtomicBool::new(false));
                    let hb_inner = Arc::clone(&inner);
                    let hb_stop = Arc::clone(&stop);
                    let handle = std::thread::spawn(move || {
                        while !hb_stop.load(Ordering::Relaxed) {
                            hb_inner.beat(slot);
                            std::thread::sleep(interval.min(Duration::from_millis(200)));
                        }
                    });
                    Heartbeat {
                        stop,
                        handle: Some(handle),
                    }
                });
                inner.beat(slot);
                ShmEndpoint {
                    fabric: Arc::clone(&inner),
                    slot,
                    rank,
                    world: cfg.world,
                    generation: cfg.generation,
                    peer_slots,
                    send_timeout: cfg.send_timeout,
                    recv_timeout: Mutex::new(cfg.recv_timeout),
                    heartbeat,
                    pool: Mutex::new(Vec::new()),
                    pool_max_buf_bytes: cfg.pool_max_buf_bytes.max(1),
                }
            })
            .collect()
    }
}

/// An endpoint's heartbeat thread: refreshes the member's liveness
/// timestamp until stopped.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One co-located rank's endpoint of a [`ShmFabric`]. See the
/// [module docs](self) for the design.
pub struct ShmEndpoint {
    fabric: Arc<ShmFabricInner>,
    /// This endpoint's fabric slot (stable across resizes).
    slot: usize,
    /// This endpoint's **global** rank.
    rank: usize,
    /// The **global** world size (not the fabric's member count).
    world: usize,
    generation: u64,
    /// Global rank → fabric slot for co-located peers; `None` off-host.
    peer_slots: Vec<Option<usize>>,
    send_timeout: Duration,
    recv_timeout: Mutex<Option<Duration>>,
    heartbeat: Option<Heartbeat>,
    pool: Mutex<Vec<Vec<u8>>>,
    /// Largest per-buffer capacity retained by the pool
    /// ([`NetConfig::pool_max_buf_bytes`] — parity with `TcpEndpoint`).
    pool_max_buf_bytes: usize,
}

impl fmt::Debug for ShmEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShmEndpoint")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("slot", &self.slot)
            .finish()
    }
}

impl ShmEndpoint {
    /// The world generation this endpoint currently runs at.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether `peer` (a global rank) is reachable over this fabric —
    /// i.e. co-located with this endpoint.
    #[must_use]
    pub fn is_local(&self, peer: usize) -> bool {
        self.peer_slots.get(peer).copied().flatten().is_some()
    }

    /// Global ranks of the co-located peers that have not departed, in
    /// ascending order. The survivor set a tiered resize intersects with
    /// the TCP rendezvous' verdict.
    #[must_use]
    pub fn live_peers(&self) -> Vec<usize> {
        (0..self.world)
            .filter(|&r| r != self.rank)
            .filter(|&r| {
                self.peer_slots[r]
                    .is_some_and(|s| !self.fabric.members[s].departed.load(Ordering::Acquire))
            })
            .collect()
    }

    /// Stops this endpoint's heartbeat thread **without** marking it
    /// departed — to every co-located peer the endpoint now looks wedged,
    /// exactly like a thread stuck in a syscall. Test hook for the failure
    /// detector; a real workload never calls this.
    #[doc(hidden)]
    pub fn stop_heartbeat(&mut self) {
        self.heartbeat = None; // Drop stops and joins the thread
    }

    fn slot_of(&self, peer: usize) -> Result<usize, CollectiveError> {
        self.check_peer(peer)?;
        self.peer_slots[peer].ok_or(CollectiveError::InvalidRank {
            rank: peer,
            world: self.world,
        })
    }

    /// Survives the loss of co-located members in place, re-identifying
    /// the survivors: `pairs` maps each surviving member's **old** global
    /// rank to its **new** one (this endpoint included), `new_world` and
    /// `new_generation` come from whoever adjudicated the resize (the TCP
    /// rendezvous in a tiered deployment, the caller in a standalone
    /// fabric).
    ///
    /// Every listed survivor must call this concurrently: they meet at an
    /// epoch gate (dead members are not counted, so they cannot block it),
    /// and only then drain stale-generation messages from their rings —
    /// after the gate nobody can still be producing old-generation
    /// traffic, and the drain stops at the first new-generation message,
    /// so an early finisher's fresh sends are never discarded.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::Reconfigure`] when `pairs` omits this
    /// endpoint or names an off-fabric rank, when survivors disagree on
    /// the set, or when a listed survivor fails to reach the gate within
    /// the send deadline.
    pub fn remap(
        &mut self,
        new_world: usize,
        new_generation: u64,
        pairs: &[(usize, usize)],
    ) -> Result<WorldChange, CollectiveError> {
        let reconf = |reason: String| CollectiveError::Reconfigure { reason };
        let Some(&(_, own_new)) = pairs.iter().find(|&&(old, _)| old == self.rank) else {
            return Err(reconf(format!(
                "survivor pairs omit this endpoint's rank {}",
                self.rank
            )));
        };
        if own_new >= new_world {
            return Err(reconf(format!(
                "new rank {own_new} out of range for new world {new_world}"
            )));
        }
        let mut slots = Vec::with_capacity(pairs.len());
        for &(old, new) in pairs {
            let Some(slot) = self.peer_slots.get(old).copied().flatten() else {
                return Err(reconf(format!(
                    "survivor pair maps rank {old}, which is not on this fabric"
                )));
            };
            if new >= new_world {
                return Err(reconf(format!(
                    "new rank {new} out of range for new world {new_world}"
                )));
            }
            slots.push((slot, new));
        }
        self.gate(pairs.len()).map_err(reconf)?;
        // Post-gate: every survivor is past its last old-generation send,
        // so everything stale is already in the rings. Drain each inbound
        // ring — survivors' and dead members' alike — up to the first
        // message of the new generation.
        for from in 0..self.fabric.members.len() {
            if from == self.slot {
                continue;
            }
            let ring = self.fabric.rings[from][self.slot]
                .as_ref()
                .expect("off-diagonal ring exists");
            while ring.try_pop_if(|g| g != new_generation).is_some() {}
        }
        let old_rank = self.rank;
        let old_world = self.world;
        let mut peer_slots = vec![None; new_world];
        for &(slot, new) in &slots {
            peer_slots[new] = Some(slot);
        }
        self.peer_slots = peer_slots;
        self.rank = own_new;
        self.world = new_world;
        self.generation = new_generation;
        Ok(WorldChange {
            old_rank,
            old_world,
            new_rank: own_new,
            new_world,
            generation: new_generation,
        })
    }

    /// Meets the other `expected - 1` survivors at the fabric's epoch
    /// gate, bounded by the send deadline.
    fn gate(&self, expected: usize) -> Result<(), String> {
        let deadline = Instant::now() + self.send_timeout;
        let mut g = self.fabric.gate.lock().expect("gate poisoned");
        match g.expected {
            None => g.expected = Some(expected),
            Some(e) if e == expected => {}
            Some(e) => {
                return Err(format!(
                    "survivors disagree on the survivor count ({e} vs {expected})"
                ))
            }
        }
        g.arrived += 1;
        if g.arrived == expected {
            g.arrived = 0;
            g.expected = None;
            g.epoch += 1;
            self.fabric.gate_cv.notify_all();
            return Ok(());
        }
        let entry_epoch = g.epoch;
        while g.epoch == entry_epoch {
            let now = Instant::now();
            if now >= deadline {
                g.arrived -= 1;
                return Err(format!(
                    "resize gate timed out after {:?} waiting for survivors",
                    self.send_timeout
                ));
            }
            let (guard, _) = self
                .fabric
                .gate_cv
                .wait_timeout(g, deadline - now)
                .expect("gate poisoned");
            g = guard;
        }
        Ok(())
    }
}

impl Transport for ShmEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CollectiveError> {
        let slot = self.slot_of(to)?;
        // A send is liveness too: a rank deep in a long compute phase
        // between heartbeats still proves itself the moment it talks.
        self.fabric.beat(self.slot);
        let ring = self.fabric.rings[self.slot][slot]
            .as_ref()
            .expect("off-diagonal ring exists");
        let mut msg = ShmMsg {
            generation: self.generation,
            msg,
        };
        let deadline = Instant::now() + self.send_timeout;
        let mut spins = 0u32;
        loop {
            match ring.try_push(msg) {
                Ok(()) => return Ok(()),
                Err(back) => msg = back,
            }
            // Full ring: the peer is not consuming. Distinguish dead from
            // slow exactly as the TCP writer does.
            if self.fabric.members[slot].departed.load(Ordering::Acquire) {
                return Err(CollectiveError::Disconnected { peer: to });
            }
            if self.fabric.is_wedged(slot) {
                return Err(CollectiveError::Aborted { peer: to });
            }
            if Instant::now() >= deadline {
                return Err(CollectiveError::Timeout {
                    peer: to,
                    millis: self.send_timeout.as_millis() as u64,
                });
            }
            wait_step(&mut spins);
        }
    }

    fn recv(&self, from: usize) -> Result<Message, CollectiveError> {
        let slot = self.slot_of(from)?;
        let ring = self.fabric.rings[slot][self.slot]
            .as_ref()
            .expect("off-diagonal ring exists");
        let timeout = *self.recv_timeout.lock().expect("recv timeout poisoned");
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut spins = 0u32;
        loop {
            if let Some(shm) = ring.try_pop() {
                if shm.generation != self.generation {
                    return Err(CollectiveError::StaleGeneration {
                        peer: from,
                        expected: self.generation,
                        actual: shm.generation,
                    });
                }
                return Ok(shm.msg);
            }
            // Empty ring: decide between waiting and failing, in the same
            // priority order as the TCP reader — graceful departure first,
            // then the failure detector's verdict, then the deadline.
            if self.fabric.members[slot].departed.load(Ordering::Acquire) {
                // Re-check after the departure flag: messages sent before
                // the peer dropped are still deliverable.
                if let Some(shm) = ring.try_pop() {
                    if shm.generation != self.generation {
                        return Err(CollectiveError::StaleGeneration {
                            peer: from,
                            expected: self.generation,
                            actual: shm.generation,
                        });
                    }
                    return Ok(shm.msg);
                }
                return Err(CollectiveError::Disconnected { peer: from });
            }
            if self.fabric.is_wedged(slot) {
                return Err(CollectiveError::Aborted { peer: from });
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(CollectiveError::Timeout {
                    peer: from,
                    millis: timeout.expect("deadline implies timeout").as_millis() as u64,
                });
            }
            wait_step(&mut spins);
        }
    }

    fn set_recv_timeout(&self, timeout: Option<Duration>) -> bool {
        *self.recv_timeout.lock().expect("recv timeout poisoned") = timeout;
        true
    }

    fn take_buffer(&self, capacity_bytes: usize) -> Vec<u8> {
        let mut pool = self.pool.lock().expect("buffer pool poisoned");
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity_bytes);
                buf
            }
            None => Vec::with_capacity(capacity_bytes),
        }
    }

    fn recycle_buffer(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        // Shrink outsized returns so one giant collective cannot pin its
        // high-water allocation in the pool (parity with `TcpEndpoint`).
        if buf.capacity() > self.pool_max_buf_bytes {
            buf.clear();
            buf.shrink_to(self.pool_max_buf_bytes);
        }
        let mut pool = self.pool.lock().expect("buffer pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Shrinks a **whole-world** fabric to `survivors` (global ranks, this
    /// rank included), renumbering densely in ascending old-rank order and
    /// bumping the generation — the standalone analog of the TCP resize
    /// rendezvous. Like the local fabric, survivors must be explicit
    /// (`None` is refused: a fabric member has no rendezvous to discover
    /// them with) and every survivor must call concurrently; unlike the
    /// local fabric, a *dead* member can never block the resize, because
    /// the epoch gate counts survivors only. Growing is refused — fabric
    /// membership is fixed at creation.
    ///
    /// Tiered endpoints do not use this: they remap from the TCP
    /// rendezvous' WELCOME tables via [`ShmEndpoint::remap`], where master
    /// election makes new ranks non-monotonic in old ranks.
    fn reconfigure(&mut self, survivors: Option<&[usize]>) -> Result<WorldChange, CollectiveError> {
        let Some(survivors) = survivors else {
            return Err(CollectiveError::Reconfigure {
                reason: "shm fabric cannot discover survivors; pass them explicitly".to_string(),
            });
        };
        let mut order: Vec<usize> = survivors.to_vec();
        order.sort_unstable();
        order.dedup();
        if order.len() != survivors.len() {
            return Err(CollectiveError::Reconfigure {
                reason: "survivor list contains duplicate ranks".to_string(),
            });
        }
        let pairs: Vec<(usize, usize)> = order.iter().enumerate().map(|(n, &o)| (o, n)).collect();
        self.remap(order.len(), self.generation + 1, &pairs)
    }
}

impl Drop for ShmEndpoint {
    fn drop(&mut self) {
        // Graceful departure: stop beating, then tell the peers. Peers
        // blocked on this rank drain any already-sent messages and then
        // see `Disconnected` (not `Aborted` — leaving is not failing).
        self.heartbeat = None;
        self.fabric.members[self.slot]
            .departed
            .store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_collectives::{ring_all_reduce, DType, ReduceOp, WireBuf};

    fn fast_cfg(world: usize) -> NetConfig {
        NetConfig::new(world, 0, "127.0.0.1:0")
            .with_send_timeout(Duration::from_millis(500))
            .with_recv_timeout(Some(Duration::from_secs(5)))
    }

    #[test]
    fn shm_delivers_in_order_and_bit_exact() {
        let mut eps = ShmFabric::create(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                a.send(1, vec![1.0, f32::NAN, -0.0].into()).unwrap();
                a.send(1, vec![2.0].into()).unwrap();
            });
            s.spawn(|| {
                let first = b.recv(0).unwrap().into_payload().to_f32_vec();
                assert_eq!(first[0].to_bits(), 1.0f32.to_bits());
                assert!(first[1].is_nan());
                assert_eq!(first[2].to_bits(), (-0.0f32).to_bits());
                assert_eq!(b.recv(0).unwrap(), vec![2.0]);
            });
        });
    }

    #[test]
    fn narrow_payloads_keep_their_dtype() {
        let mut eps = ShmFabric::create(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let elems = [1.0f32, -2.5, 0.5, 1024.0];
        a.send(1, Message::new(WireBuf::encode(&elems, DType::Bf16)))
            .unwrap();
        let payload = b.recv(0).unwrap().into_payload();
        assert_eq!(payload.dtype(), DType::Bf16);
        assert_eq!(payload.num_bytes(), 8);
        assert_eq!(payload.to_f32_vec(), elems);
    }

    #[test]
    fn send_to_self_and_out_of_range_are_invalid() {
        let eps = ShmFabric::create(2);
        assert!(matches!(
            eps[0].send(0, vec![].into()).unwrap_err(),
            CollectiveError::InvalidRank { rank: 0, .. }
        ));
        assert!(matches!(
            eps[0].send(7, vec![].into()).unwrap_err(),
            CollectiveError::InvalidRank { rank: 7, world: 2 }
        ));
    }

    #[test]
    fn off_host_rank_is_invalid_not_a_hang() {
        // A fabric covering ranks {1, 3} of a world of 4: rank 2 is real
        // but lives elsewhere — the shm tier must refuse it typed, so the
        // tiered router's misroute would be loud.
        let cfg = fast_cfg(4);
        let eps = ShmFabric::with_config(&cfg, &[1, 3]);
        assert_eq!(eps[0].rank(), 1);
        assert!(eps[0].is_local(3));
        assert!(!eps[0].is_local(2));
        assert!(matches!(
            eps[0].send(2, vec![1.0].into()).unwrap_err(),
            CollectiveError::InvalidRank { rank: 2, world: 4 }
        ));
    }

    #[test]
    fn recv_timeout_surfaces_instead_of_hanging() {
        let eps = ShmFabric::create(2);
        assert!(eps[0].set_recv_timeout(Some(Duration::from_millis(20))));
        let err = eps[0].recv(1).unwrap_err();
        assert!(matches!(err, CollectiveError::Timeout { peer: 1, .. }));
    }

    #[test]
    fn full_ring_backpressure_times_out_against_a_stalled_peer() {
        let mut cfg = fast_cfg(2).with_outbox_frames(2);
        cfg.heartbeat_interval = None;
        let eps = ShmFabric::with_config(&cfg, &[0, 1]);
        // Rank 1 never receives: after the ring (capacity 2) fills, sends
        // must fail with Timeout, not block forever.
        let mut sent = 0;
        let err = loop {
            match eps[0].send(1, vec![1.0; 4].into()) {
                Ok(()) => sent += 1,
                Err(e) => break e,
            }
            assert!(sent <= 2, "ring accepted more than its capacity");
        };
        assert!(matches!(err, CollectiveError::Timeout { peer: 1, .. }));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnected_after_draining() {
        let mut eps = ShmFabric::create(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        // Messages sent before the drop must still be delivered.
        a.send(1, vec![42.0].into()).unwrap();
        drop(a);
        assert_eq!(b.recv(0).unwrap(), vec![42.0]);
        let err = b.recv(0).unwrap_err();
        assert_eq!(err, CollectiveError::Disconnected { peer: 0 });
    }

    #[test]
    fn wedged_peer_is_declared_dead_by_the_failure_detector() {
        let mut cfg = fast_cfg(2);
        cfg.heartbeat_interval = Some(Duration::from_millis(20));
        cfg.heartbeat_miss_budget = 3;
        let mut eps = ShmFabric::with_config(&cfg, &[0, 1]);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // Rank 0 wedges: heartbeats stop but the endpoint is not dropped.
        a.stop_heartbeat();
        b.set_recv_timeout(Some(Duration::from_secs(5)));
        let start = Instant::now();
        let err = b.recv(0).unwrap_err();
        assert_eq!(err, CollectiveError::Aborted { peer: 0 });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "detector took {:?}",
            start.elapsed()
        );
        drop(a);
    }

    #[test]
    fn stale_generation_messages_are_rejected() {
        let cfg_old = fast_cfg(2).with_generation(3);
        let cfg_new = fast_cfg(2).with_generation(4);
        // Two endpoints of one fabric at different generations — the shm
        // equivalent of a straggler from a previous incarnation.
        let mut old = ShmFabric::with_config(&cfg_old, &[0, 1]);
        let b = old.pop().unwrap();
        let a = old.pop().unwrap();
        drop(b);
        let _ = a; // sender at generation 3
        let mut fresh = ShmFabric::with_config(&cfg_new, &[0, 1]);
        let rx = fresh.pop().unwrap();
        let tx = fresh.pop().unwrap();
        // Hand-stamp an old-generation message into the fresh fabric.
        let ring = tx.fabric.rings[tx.slot][rx.slot].as_ref().unwrap();
        ring.try_push(ShmMsg {
            generation: 3,
            msg: vec![9.0].into(),
        })
        .ok()
        .unwrap();
        let err = rx.recv(0).unwrap_err();
        assert_eq!(
            err,
            CollectiveError::StaleGeneration {
                peer: 0,
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn pool_reuses_buffers() {
        let eps = ShmFabric::create(2);
        let mut buf = eps[0].take_buffer(16);
        buf.extend_from_slice(&[1, 2]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        eps[0].recycle_buffer(buf);
        let again = eps[0].take_buffer(8);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.as_ptr(), ptr);
    }

    #[test]
    fn pool_capacity_decays_above_the_configured_cap() {
        let cfg = NetConfig::new(2, 0, "127.0.0.1:0").with_pool_max_buf_bytes(1024);
        let eps = ShmFabric::with_config(&cfg, &[0, 1]);
        let mut big = eps[0].take_buffer(32 * 1024);
        big.resize(32 * 1024, 0);
        eps[0].recycle_buffer(big);
        let retained = eps[0].take_buffer(0);
        assert!(
            retained.capacity() <= 1024,
            "shm pool retained {} bytes past the 1024-byte cap",
            retained.capacity()
        );
    }

    #[test]
    fn reconfigure_shrinks_past_a_dead_member_without_it() {
        // Rank 1 dies abruptly mid-step, with traffic still queued both
        // ways. The survivors resize without rank 1 ever reaching the
        // gate, stale in-flight messages are drained, and the shrunk world
        // runs a correct collective.
        let mut eps = ShmFabric::create(3);
        let victim = eps.remove(1);
        eps[0].send(2, vec![66.6; 4].into()).unwrap();
        eps[1].send(0, vec![77.7; 4].into()).unwrap();
        victim.send(0, vec![88.8; 4].into()).unwrap(); // from the dead rank
        drop(victim);
        let survivors = [0usize, 2];
        let changes: Vec<WorldChange> = std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| s.spawn(move || ep.reconfigure(Some(&survivors)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(changes[0].new_rank, 0);
        assert_eq!(changes[1].new_rank, 1);
        assert_eq!(changes[1].old_rank, 2);
        for (ep, change) in eps.iter().zip(&changes) {
            assert_eq!(ep.world_size(), 2);
            assert_eq!(change.generation, 1);
            assert_eq!(ep.generation(), 1);
        }
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 8];
                    ring_all_reduce(ep, &mut data, ReduceOp::Sum).unwrap();
                    assert_eq!(data, vec![3.0; 8]);
                });
            }
        });
    }

    #[test]
    fn remap_applies_non_monotonic_rank_maps() {
        // A tiered resize can hand co-located survivors new ranks that are
        // NOT ascending in old rank (master election): old {1, 2} → new
        // {2, 0}. The fabric must follow the map, not assume order.
        let cfg = fast_cfg(4);
        let mut eps = ShmFabric::with_config(&cfg, &[1, 2]);
        let pairs = [(1usize, 2usize), (2usize, 0usize)];
        std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| s.spawn(move || ep.remap(3, 1, &pairs).unwrap()))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(eps[0].rank(), 2);
        assert_eq!(eps[1].rank(), 0);
        assert_eq!(eps[0].world_size(), 3);
        // The remapped pair still talks, under the new names.
        std::thread::scope(|s| {
            let (a, b) = eps.split_at_mut(1);
            s.spawn(|| a[0].send(0, vec![5.0].into()).unwrap());
            s.spawn(|| assert_eq!(b[0].recv(2).unwrap(), vec![5.0]));
        });
    }

    #[test]
    fn reconfigure_rejects_bad_survivor_sets() {
        let mut eps = ShmFabric::create(3);
        assert!(matches!(
            eps[0].reconfigure(None).unwrap_err(),
            CollectiveError::Reconfigure { .. }
        ));
        let err = eps[0].reconfigure(Some(&[1, 2])).unwrap_err();
        assert!(
            matches!(err, CollectiveError::Reconfigure { ref reason } if reason.contains("omit")),
            "{err}"
        );
        let err = eps[0].reconfigure(Some(&[0, 1, 1])).unwrap_err();
        assert!(
            matches!(err, CollectiveError::Reconfigure { ref reason } if reason.contains("duplicate")),
            "{err}"
        );
        // Validation failures leave the endpoint untouched.
        assert_eq!(eps[0].rank(), 0);
        assert_eq!(eps[0].world_size(), 3);
    }

    #[test]
    fn live_peers_tracks_departures() {
        let mut eps = ShmFabric::create(3);
        assert_eq!(eps[0].live_peers(), vec![1, 2]);
        let victim = eps.remove(1);
        drop(victim);
        assert_eq!(eps[0].live_peers(), vec![2]);
    }

    #[test]
    fn all_reduce_across_the_fabric_matches_the_analytic_sum() {
        let eps = ShmFabric::create(4);
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 100];
                    ring_all_reduce(ep, &mut data, ReduceOp::Sum).unwrap();
                    assert_eq!(data, vec![10.0; 100]);
                });
            }
        });
    }
}

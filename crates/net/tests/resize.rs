//! In-place elastic resize acceptance tests.
//!
//! Property layer: shrink (P→P−1) and grow (P→P+1) rendezvous always
//! converge to dense ranks, and every all-reduce algorithm over the
//! resized world is **bit-identical** to a fresh world of the same size —
//! the resize must leave zero numerical or protocol residue.
//!
//! End-to-end layer: the real `dear-launch` binary runs a 4-rank demo
//! world, one rank dies abruptly mid-training, and the survivors must
//! resize in place — no process restart, no checkpoint replay — with
//! parameters bitwise-identical across survivors at every post-resize
//! boundary.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::process::Command;
use std::time::{Duration, Instant};

use dear_collectives::{
    hierarchical_all_reduce_seg, naive_all_reduce_seg, rhd_all_reduce_seg, ring_all_reduce_seg,
    tree_broadcast_seg, tree_reduce_seg, ClusterShape, LocalFabric, ReduceOp, SegmentConfig,
    Transport, WorldChange,
};
use dear_net::{tcp_loopback_with, tiered_loopback_with, NetConfig, TcpEndpoint};
use proptest::prelude::*;

/// Per-rank deterministic pseudo-random data (same scheme as the TCP
/// transparency proptests), keyed by the rank the endpoint holds *now* —
/// after a resize that is the dense new rank.
fn rank_data(rank: usize, d: usize, salt: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(salt | 1);
            ((x % 4096) as f32 - 2048.0) / 32.0
        })
        .collect()
}

/// Runs `f` on every rank of a fabric, one thread per rank.
fn run_ranks<T, R, F>(endpoints: &[T], f: F) -> Vec<R>
where
    T: Transport + Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = endpoints.iter().map(|ep| s.spawn(|| f(ep))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Every all-reduce algorithm, back to back on one fabric: ring, RHD,
/// tree (reduce+broadcast), naive, hierarchical. Running them all on the
/// same endpoints also checks no algorithm leaves stray frames behind.
fn all_algorithms<T: Transport>(t: &T, d: usize, salt: u64, seg: SegmentConfig) -> Vec<Vec<f32>> {
    let world = t.world_size();
    let mut outs = Vec::new();
    let mut data = rank_data(t.rank(), d, salt);
    ring_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    rhd_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    tree_reduce_seg(t, &mut data, 0, ReduceOp::Sum, seg).unwrap();
    tree_broadcast_seg(t, &mut data, 0, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    naive_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let nodes = (2..=world).find(|n| world.is_multiple_of(*n)).unwrap_or(1);
    let shape = ClusterShape::new(nodes, world / nodes);
    let mut data = rank_data(t.rank(), d, salt);
    hierarchical_all_reduce_seg(t, shape, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    outs
}

/// Asserts `resized[i]` (an endpoint holding dense rank `new_ranks[i]`)
/// produced bit-for-bit what the same rank of a fresh world produced.
fn assert_matches_fresh(
    resized: &[Vec<Vec<f32>>],
    new_ranks: &[usize],
    fresh: &[Vec<Vec<f32>>],
) -> Result<(), String> {
    for (i, outs) in resized.iter().enumerate() {
        let want = &fresh[new_ranks[i]];
        for (algo, (got, exp)) in outs.iter().zip(want).enumerate() {
            prop_assert_eq!(got.len(), exp.len());
            for (e, (a, b)) in got.iter().zip(exp).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "new rank {} algo {} elem {}: resized {} != fresh {}",
                    new_ranks[i],
                    algo,
                    e,
                    a,
                    b
                );
            }
        }
    }
    Ok(())
}

/// Builds a `world`-rank TCP mesh by hand so the test keeps the master
/// address (a fresh joiner derives the resize rendezvous address from it).
fn tcp_world_by_hand(
    world: usize,
    tweak: &(impl Fn(NetConfig) -> NetConfig + Sync),
) -> (Vec<TcpEndpoint>, String) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let eps = std::thread::scope(|s| {
        let workers: Vec<_> = (1..world)
            .map(|r| {
                let cfg = tweak(NetConfig::new(world, r, addr.clone()));
                s.spawn(move || TcpEndpoint::connect(&cfg).unwrap())
            })
            .collect();
        let cfg0 = tweak(NetConfig::new(world, 0, addr.clone()));
        let ep0 = TcpEndpoint::connect_with_listener(&cfg0, listener).unwrap();
        let mut eps = vec![ep0];
        eps.extend(workers.into_iter().map(|h| h.join().unwrap()));
        eps
    });
    (eps, addr)
}

fn resize_tweak(cfg: NetConfig) -> NetConfig {
    let mut cfg = cfg
        .with_connect_timeout(Duration::from_secs(10))
        .with_resize_window(Duration::from_millis(400));
    cfg.recv_timeout = Some(Duration::from_secs(60)); // hang guard
    cfg
}

/// Shrink P→P−1: whichever rank dies, the survivors' resize rendezvous
/// converges to dense ranks at generation 1, and every algorithm then
/// behaves exactly like a fresh (P−1)-rank world.
fn shrink_case(
    world: usize,
    victim: usize,
    d: usize,
    max_segment_bytes: usize,
    salt: u64,
) -> Result<(), String> {
    let victim = victim % world;
    let seg = SegmentConfig::new(max_segment_bytes);
    let fresh = run_ranks(&LocalFabric::create(world - 1), |ep| {
        all_algorithms(ep, d, salt, seg)
    });
    let mut eps = tcp_loopback_with(world, resize_tweak).unwrap();
    drop(eps.remove(victim));
    let changes: Vec<WorldChange> = std::thread::scope(|s| {
        let handles: Vec<_> = eps
            .iter_mut()
            .map(|ep| s.spawn(move || ep.reconfigure(None).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut dense: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    dense.sort_unstable();
    prop_assert_eq!(dense, (0..world - 1).collect::<Vec<_>>());
    for c in &changes {
        prop_assert_eq!(c.new_world, world - 1);
        prop_assert_eq!(c.generation, 1);
    }
    let resized = run_ranks(&eps, |ep| all_algorithms(ep, d, salt, seg));
    let new_ranks: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    assert_matches_fresh(&resized, &new_ranks, &fresh)
}

/// Grow P→P+1: a fresh joiner is admitted at the appended rank, the
/// members converge to dense ranks, and every algorithm then behaves
/// exactly like a fresh (P+1)-rank world.
fn grow_case(world: usize, d: usize, max_segment_bytes: usize, salt: u64) -> Result<(), String> {
    let seg = SegmentConfig::new(max_segment_bytes);
    let fresh = run_ranks(&LocalFabric::create(world + 1), |ep| {
        all_algorithms(ep, d, salt, seg)
    });
    let (mut eps, addr) = tcp_world_by_hand(world, &resize_tweak);
    let jcfg = resize_tweak(NetConfig::new(world, 1, addr));
    let (changes, joiner) = std::thread::scope(|s| {
        let handles: Vec<_> = eps
            .iter_mut()
            .map(|ep| s.spawn(move || ep.reconfigure(None).unwrap()))
            .collect();
        let hj = s.spawn(move || TcpEndpoint::join_resize(&jcfg, 1).unwrap());
        let changes: Vec<WorldChange> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (changes, hj.join().unwrap())
    });
    prop_assert_eq!(joiner.world_size(), world + 1);
    prop_assert_eq!(joiner.rank(), world, "fresh joiners are appended last");
    let mut dense: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    dense.push(joiner.rank());
    dense.sort_unstable();
    prop_assert_eq!(dense, (0..world + 1).collect::<Vec<_>>());
    for c in &changes {
        prop_assert_eq!(c.new_world, world + 1);
        prop_assert_eq!(c.generation, 1);
    }
    let mut new_ranks: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    new_ranks.push(joiner.rank());
    eps.push(joiner);
    let resized = run_ranks(&eps, |ep| all_algorithms(ep, d, salt, seg));
    assert_matches_fresh(&resized, &new_ranks, &fresh)
}

proptest! {
    // Every case stands up a real TCP mesh and pays a full resize window;
    // keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shrink_converges_to_dense_ranks_and_matches_a_fresh_world(
        world in 3usize..6,
        victim in 0usize..6,
        d in 0usize..160,
        max_segment_bytes in 0usize..96,
        salt in any::<u64>(),
    ) {
        shrink_case(world, victim, d, max_segment_bytes, salt)?;
    }

    #[test]
    fn grow_converges_to_dense_ranks_and_matches_a_fresh_world(
        world in 2usize..5,
        d in 0usize..160,
        max_segment_bytes in 0usize..96,
        salt in any::<u64>(),
    ) {
        grow_case(world, d, max_segment_bytes, salt)?;
    }
}

/// Two-tier elastic resize: a 2-host × 2-rank tiered world (shm within a
/// host, TCP between hosts) loses one co-located rank abruptly. The
/// survivors span both tiers asymmetrically afterwards — the bereaved
/// host keeps a 1-member fabric (all its traffic moves to TCP) while the
/// intact host still routes intra-host over shm — and the resize must
/// reconfigure both tiers in place: the TCP rendezvous adjudicates, its
/// WELCOME tables drive the shm remap, and every algorithm then matches a
/// fresh 3-rank world bit for bit.
#[test]
fn tiered_resize_survives_losing_a_co_located_rank() {
    let seg = SegmentConfig::new(48);
    let salt = 0xD_EA_11;
    let d = 96;
    let fresh = run_ranks(&LocalFabric::create(3), |ep| {
        all_algorithms(ep, d, salt, seg)
    });
    // Hosts: {0, 1} on host 0, {2, 3} on host 1. Kill rank 1.
    let mut eps = tiered_loopback_with(2, 2, resize_tweak).unwrap();
    drop(eps.remove(1));
    let changes: Vec<WorldChange> = std::thread::scope(|s| {
        let handles: Vec<_> = eps
            .iter_mut()
            .map(|ep| s.spawn(move || ep.reconfigure(None).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut dense: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    dense.sort_unstable();
    assert_eq!(dense, vec![0, 1, 2]);
    for (ep, c) in eps.iter().zip(&changes) {
        assert_eq!(c.new_world, 3);
        assert_eq!(ep.world_size(), 3);
    }
    // Tier routing after the resize: the intact host's pair still rides
    // shm, the bereaved survivor reaches everyone over TCP only.
    for (ep, c) in eps.iter().zip(&changes) {
        let hosts = ep.host_ids();
        for peer in 0..3 {
            if peer == c.new_rank {
                continue;
            }
            assert_eq!(
                ep.is_local(peer),
                hosts[peer] == hosts[c.new_rank],
                "new rank {} → peer {peer}: tier routing disagrees with the host table",
                c.new_rank
            );
        }
    }
    let bereaved = &eps[0]; // old rank 0, alone on host 0 now
    assert_eq!(changes[0].old_rank, 0);
    assert!(
        (0..3).all(|p| !bereaved.is_local(p)),
        "host 0 lost its pair"
    );
    let intact = &eps[1]; // old rank 2, still sharing host 1 with old rank 3
    let partner = changes[2].new_rank;
    assert!(
        intact.is_local(partner),
        "the intact host's pair must keep its shm tier"
    );
    // And the resized two-tier world still computes exactly.
    let resized = run_ranks(&eps, |ep| all_algorithms(ep, d, salt, seg));
    let new_ranks: Vec<usize> = changes.iter().map(|c| c.new_rank).collect();
    assert_matches_fresh(&resized, &new_ranks, &fresh).unwrap();
}

const LAUNCH: &str = env!("CARGO_BIN_EXE_dear-launch");

/// The headline acceptance test: a 4-rank TCP demo world loses rank 1 to
/// an abrupt death (`process::exit` mid-collective — indistinguishable
/// from SIGKILL at the network layer) and must finish on 3 ranks by
/// resizing in place: no supervisor restart, no checkpoint replay, and
/// survivor parameters bitwise-identical at every post-resize boundary.
#[test]
fn killed_rank_is_survived_by_an_in_place_resize_without_restart() {
    let start = Instant::now();
    let output = Command::new(LAUNCH)
        .args([
            "--world",
            "4",
            "--demo",
            "--steps",
            "25",
            "--timeout-secs",
            "120",
            "--elastic-resize",
        ])
        .env("DEAR_RECV_TIMEOUT_MS", "3000")
        .env("DEAR_RESIZE_WINDOW_MS", "2000")
        .env("DEAR_DEMO_EXIT_RANK", "1")
        .env("DEAR_DEMO_EXIT_AT_STEP", "7")
        .output()
        .expect("running dear-launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "elastic-resize run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("dying abruptly at step 7"),
        "the injected death never fired:\n{stderr}"
    );
    assert!(
        stderr.contains("resizing in place"),
        "no survivor started an in-place resize:\n{stderr}"
    );
    assert!(
        stderr.contains("resumed at step"),
        "no survivor resumed after the resize:\n{stderr}"
    );
    // The whole point: neither recovery mechanism from the restart era.
    assert!(
        !stderr.contains("restarting in"),
        "the supervisor restarted the world:\n{stderr}"
    );
    assert!(
        !stderr.contains("resuming from checkpoint"),
        "a rank replayed a checkpoint:\n{stderr}"
    );
    assert!(
        stderr.contains("resized in place and exited cleanly"),
        "the supervisor did not report tolerated departures:\n{stderr}"
    );

    // Survivors must agree bit-for-bit at every post-resize boundary:
    // collect the `world=3` hash lines and group them by step.
    let mut by_step: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for line in stderr.lines() {
        if !line.starts_with("dear-demo rank=") || !line.contains(" world=3 ") {
            continue;
        }
        let field = |key: &str| -> Option<String> {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .map(str::to_string)
        };
        let (Some(step), Some(hash)) = (field("step"), field("params_hash")) else {
            continue;
        };
        by_step.entry(step.parse().unwrap()).or_default().push(hash);
    }
    assert!(
        by_step.len() >= 3,
        "expected several post-resize boundaries, got {by_step:?}\nstderr:\n{stderr}"
    );
    for (step, hashes) in &by_step {
        assert_eq!(
            hashes.len(),
            3,
            "step {step}: expected all 3 survivors to report, got {hashes:?}"
        );
        assert!(
            hashes.iter().all(|h| h == &hashes[0]),
            "step {step}: survivor parameters diverged: {hashes:?}"
        );
    }

    // Final summaries: exactly the 3 survivors, dense ranks, one hash.
    let finals: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("dear-demo rank="))
        .collect();
    assert_eq!(
        finals.len(),
        3,
        "expected 3 survivor summaries\nstdout:\n{stdout}"
    );
    for r in 0..3 {
        assert!(
            finals
                .iter()
                .any(|l| l.contains(&format!("rank={r} world=3 "))),
            "missing dense rank {r} summary\nstdout:\n{stdout}"
        );
    }
    let hash = finals[0].split("params_hash=").nth(1).unwrap();
    assert!(
        finals.iter().all(|l| l.ends_with(hash)),
        "final survivor parameters diverged\nstdout:\n{stdout}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(150),
        "acceptance test took {:?}",
        start.elapsed()
    );
}

//! Property: the shared-memory fabric and the two-tier transport are
//! **bit-identical** to the in-process `LocalFabric` for every collective
//! algorithm and every wire dtype. Routing a message through a lock-free
//! ring (or splitting one collective's traffic across shm and TCP tiers
//! mid-algorithm) must be a pure transport concern — zero numerical
//! footprint, no reordering, no stray frames leaking into the next
//! collective.

use std::time::Duration;

use dear_collectives::{
    double_tree_all_reduce_seg, hierarchical_all_reduce_seg, naive_all_reduce_seg,
    rhd_all_reduce_seg, ring_all_reduce_seg, ClusterShape, DType, LocalFabric, ReduceOp,
    SegmentConfig, Transport,
};
use dear_net::{tiered_loopback_with, ShmFabric};
use proptest::prelude::*;

/// Per-rank deterministic pseudo-random data, adversarial bit patterns
/// included via the salt multiply.
fn rank_data(rank: usize, d: usize, salt: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(salt | 1);
            ((x % 4096) as f32 - 2048.0) / 32.0
        })
        .collect()
}

/// Runs `f` on every rank of a fabric, one thread per rank.
fn run_ranks<T, R, F>(endpoints: Vec<T>, f: F) -> Vec<R>
where
    T: Transport + Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = endpoints.iter().map(|ep| s.spawn(|| f(ep))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// All five all-reduce families, back to back on the same endpoints: ring,
/// recursive halving-doubling, double binary tree, naive (reduce +
/// broadcast), and hierarchical. Reusing one fabric across all of them
/// also proves no collective leaves stray frames behind.
fn all_five<T: Transport>(t: &T, d: usize, salt: u64, seg: SegmentConfig) -> Vec<Vec<f32>> {
    let world = t.world_size();
    let mut outs = Vec::new();
    let mut data = rank_data(t.rank(), d, salt);
    ring_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    rhd_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    double_tree_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    naive_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let nodes = (2..=world).find(|n| world % *n == 0).unwrap_or(1);
    let shape = ClusterShape::new(nodes, world / nodes);
    let mut data = rank_data(t.rank(), d, salt);
    hierarchical_all_reduce_seg(t, shape, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    outs
}

fn assert_bit_identical(
    local: &[Vec<Vec<f32>>],
    other: &[Vec<Vec<f32>>],
    transport: &str,
) -> Result<(), String> {
    for (rank, (l, o)) in local.iter().zip(other).enumerate() {
        for (algo, (lv, ov)) in l.iter().zip(o).enumerate() {
            prop_assert_eq!(lv.len(), ov.len());
            for (i, (a, b)) in lv.iter().zip(ov).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "rank {} algo {} elem {}: local {} != {} {}",
                    rank,
                    algo,
                    i,
                    a,
                    transport,
                    b
                );
            }
        }
    }
    Ok(())
}

proptest! {
    // Shm cases are cheap (no sockets); tiered cases build a real TCP
    // mesh per case, so keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shm_is_bit_identical_to_local_fabric(
        world in 1usize..7,
        d in 0usize..300,
        max_segment_bytes in 0usize..128,
        salt in any::<u64>(),
        wire_idx in 0usize..3,
    ) {
        let wire = [DType::F32, DType::Bf16, DType::F16][wire_idx];
        let seg = SegmentConfig::new(max_segment_bytes).with_wire(wire);
        let local = run_ranks(LocalFabric::create(world), |ep| {
            all_five(ep, d, salt, seg)
        });
        let shm = run_ranks(ShmFabric::create(world), |ep| all_five(ep, d, salt, seg));
        assert_bit_identical(&local, &shm, "shm")?;
    }

    #[test]
    fn tiered_is_bit_identical_to_local_fabric(
        hosts in 1usize..3,
        ranks_per_host in 1usize..3,
        d in 0usize..200,
        max_segment_bytes in 0usize..96,
        salt in any::<u64>(),
        wire_idx in 0usize..3,
    ) {
        // Every collective here spans both tiers at once: intra-host hops
        // ride the shm rings while inter-host hops ride real sockets, and
        // the result must still land bit-for-bit on LocalFabric's answer.
        let wire = [DType::F32, DType::Bf16, DType::F16][wire_idx];
        let seg = SegmentConfig::new(max_segment_bytes).with_wire(wire);
        let world = hosts * ranks_per_host;
        let local = run_ranks(LocalFabric::create(world), |ep| {
            all_five(ep, d, salt, seg)
        });
        let tiered_eps = tiered_loopback_with(hosts, ranks_per_host, |mut cfg| {
            cfg.recv_timeout = Some(Duration::from_secs(60)); // hang guard
            cfg
        })
        .unwrap();
        let tiered = run_ranks(tiered_eps, |ep| all_five(ep, d, salt, seg));
        assert_bit_identical(&local, &tiered, "tiered")?;
    }
}

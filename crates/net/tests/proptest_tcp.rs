//! Property: every collective over real TCP sockets is **bit-identical**
//! to the same collective over the in-process `LocalFabric`. The wire
//! (LE `f32` framing, segmentation, per-peer ordering) must be a pure
//! transport concern — zero numerical footprint.

use std::time::Duration;

use dear_collectives::{
    hierarchical_all_reduce_seg, rhd_all_reduce_seg, ring_all_reduce_seg, tree_broadcast_seg,
    tree_reduce_seg, ClusterShape, DType, LocalFabric, ReduceOp, SegmentConfig, Transport,
};
use dear_net::tcp_loopback_with;
use proptest::prelude::*;

/// Per-rank deterministic pseudo-random data, adversarial bit patterns
/// included via the salt multiply.
fn rank_data(rank: usize, d: usize, salt: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(salt | 1);
            ((x % 4096) as f32 - 2048.0) / 32.0
        })
        .collect()
}

/// Runs `f` on every rank of a fabric, one thread per rank.
fn run_ranks<T, R, F>(endpoints: Vec<T>, f: F) -> Vec<R>
where
    T: Transport + Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = endpoints.iter().map(|ep| s.spawn(|| f(ep))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Every supported all-reduce, over one fabric, back to back. Exercising
/// them all on the *same* endpoints also checks that no collective leaves
/// stray frames behind to corrupt the next one.
fn all_algorithms<T: Transport>(t: &T, d: usize, salt: u64, seg: SegmentConfig) -> Vec<Vec<f32>> {
    let world = t.world_size();
    let mut outs = Vec::new();
    let mut data = rank_data(t.rank(), d, salt);
    ring_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    rhd_all_reduce_seg(t, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    tree_reduce_seg(t, &mut data, 0, ReduceOp::Sum, seg).unwrap();
    tree_broadcast_seg(t, &mut data, 0, seg).unwrap();
    outs.push(data);
    // Hierarchical needs a factorisation of the world; use the smallest
    // non-trivial node count so both the intra- and inter-node phases run.
    let nodes = (2..=world).find(|n| world.is_multiple_of(*n)).unwrap_or(1);
    let shape = ClusterShape::new(nodes, world / nodes);
    let mut data = rank_data(t.rank(), d, salt);
    hierarchical_all_reduce_seg(t, shape, &mut data, ReduceOp::Sum, seg).unwrap();
    outs.push(data);
    let mut data = rank_data(t.rank(), d, salt);
    ring_all_reduce_seg(t, &mut data, ReduceOp::Max, seg).unwrap();
    outs.push(data);
    outs
}

proptest! {
    // Each case sets up a real TCP mesh; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tcp_is_bit_identical_to_local_fabric(
        world in 1usize..6,
        d in 0usize..300,
        max_segment_bytes in 0usize..128,
        salt in any::<u64>(),
    ) {
        let seg = SegmentConfig::new(max_segment_bytes);
        let local = run_ranks(LocalFabric::create(world), |ep| {
            all_algorithms(ep, d, salt, seg)
        });
        let tcp_eps = tcp_loopback_with(world, |mut cfg| {
            cfg.recv_timeout = Some(Duration::from_secs(60)); // hang guard
            cfg
        })
        .unwrap();
        let tcp = run_ranks(tcp_eps, |ep| all_algorithms(ep, d, salt, seg));
        // Bitwise equality, per rank, per algorithm, per element.
        for (rank, (l, t)) in local.iter().zip(&tcp).enumerate() {
            for (algo, (lv, tv)) in l.iter().zip(t).enumerate() {
                prop_assert_eq!(lv.len(), tv.len());
                for (i, (a, b)) in lv.iter().zip(tv).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "rank {} algo {} elem {}: local {} != tcp {}",
                        rank, algo, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn tcp_is_bit_identical_to_local_fabric_on_narrow_wires(
        world in 1usize..5,
        d in 0usize..200,
        max_segment_bytes in 0usize..96,
        salt in any::<u64>(),
        wire_idx in 0usize..2,
    ) {
        // Same transport-transparency property on a lossy wire: the
        // rounding happens at the sender (before encoding), so a bf16/f16
        // payload over a real socket must still land bit-for-bit where the
        // in-process fabric lands it — the TCP frame is a pure carrier of
        // the narrow bytes.
        let wire = [DType::Bf16, DType::F16][wire_idx];
        let seg = SegmentConfig::new(max_segment_bytes).with_wire(wire);
        let local = run_ranks(LocalFabric::create(world), |ep| {
            all_algorithms(ep, d, salt, seg)
        });
        let tcp_eps = tcp_loopback_with(world, |mut cfg| {
            cfg.recv_timeout = Some(Duration::from_secs(60)); // hang guard
            cfg
        })
        .unwrap();
        let tcp = run_ranks(tcp_eps, |ep| all_algorithms(ep, d, salt, seg));
        for (rank, (l, t)) in local.iter().zip(&tcp).enumerate() {
            for (algo, (lv, tv)) in l.iter().zip(t).enumerate() {
                prop_assert_eq!(lv.len(), tv.len());
                for (i, (a, b)) in lv.iter().zip(tv).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} wire, rank {} algo {} elem {}: local {} != tcp {}",
                        wire, rank, algo, i, a, b
                    );
                }
            }
        }
    }
}

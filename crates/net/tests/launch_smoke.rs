//! End-to-end multi-process smoke tests: run the real `dear-launch`
//! binary, four OS processes, real sockets, real DeAR training — and
//! assert the trained models agree bit-for-bit across ranks. Also the
//! failure path: killing one worker mid-step must fail the whole launch
//! promptly instead of hanging.

use std::process::Command;
use std::time::{Duration, Instant};

const LAUNCH: &str = env!("CARGO_BIN_EXE_dear-launch");

#[derive(Debug)]
struct RankLine {
    rank: usize,
    world: usize,
    eval_loss: String,
    params_hash: String,
    strategy: String,
    optim_bytes: usize,
}

fn parse_lines(stdout: &str) -> Vec<RankLine> {
    let mut out = Vec::new();
    for line in stdout.lines().filter(|l| l.starts_with("dear-demo rank=")) {
        let field = |key: &str| -> String {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
                .to_string()
        };
        out.push(RankLine {
            rank: field("rank").parse().unwrap(),
            world: field("world").parse().unwrap(),
            eval_loss: field("eval_loss"),
            params_hash: field("params_hash"),
            strategy: field("strategy"),
            optim_bytes: field("optim_bytes").parse().unwrap(),
        });
    }
    out
}

#[test]
fn four_process_training_agrees_across_ranks() {
    let output = Command::new(LAUNCH)
        .args([
            "--world",
            "4",
            "--demo",
            "--steps",
            "25",
            "--timeout-secs",
            "120",
        ])
        .env("DEAR_RECV_TIMEOUT_MS", "60000")
        .output()
        .expect("running dear-launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "launch failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    let mut lines = parse_lines(&stdout);
    assert_eq!(lines.len(), 4, "expected 4 rank lines in:\n{stdout}");
    lines.sort_by_key(|l| l.rank);
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(line.rank, i);
        assert_eq!(line.world, 4);
        // Exact string equality == bit-identical loss and parameters.
        assert_eq!(line.eval_loss, lines[0].eval_loss, "losses diverged");
        assert_eq!(line.params_hash, lines[0].params_hash, "params diverged");
    }
}

#[test]
fn zero2_strategy_matches_ddp_losses_and_shards_optimizer_memory() {
    // The strategy API end to end across processes: one DDP run and one
    // `--strategy zero2` run over real sockets must finish with the SAME
    // eval loss and parameter hash, string-exact (bit-identity on the f32
    // wire), while every zero2 rank holds ~1/world of the DDP ranks'
    // resident optimizer bytes.
    let run = |extra: &[&str]| -> Vec<RankLine> {
        let mut args = vec![
            "--world",
            "4",
            "--demo",
            "--steps",
            "25",
            "--timeout-secs",
            "120",
        ];
        args.extend_from_slice(extra);
        let output = Command::new(LAUNCH)
            .args(&args)
            .env("DEAR_RECV_TIMEOUT_MS", "60000")
            .output()
            .expect("running dear-launch");
        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            output.status.success(),
            "launch {args:?} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        let mut lines = parse_lines(&stdout);
        assert_eq!(lines.len(), 4, "expected 4 rank lines in:\n{stdout}");
        lines.sort_by_key(|l| l.rank);
        lines
    };
    let ddp = run(&[]);
    let zero2 = run(&["--strategy", "zero2"]);
    for rank in 0..4 {
        assert_eq!(ddp[rank].strategy, "ddp");
        assert_eq!(zero2[rank].strategy, "zero2");
        assert_eq!(
            ddp[rank].eval_loss, zero2[rank].eval_loss,
            "zero2 losses diverged from DDP"
        );
        assert_eq!(
            ddp[rank].params_hash, zero2[rank].params_hash,
            "zero2 parameters diverged from DDP"
        );
        // ~1/world the resident optimizer state, with chunk-rounding slack.
        assert!(
            zero2[rank].optim_bytes * 4 <= ddp[rank].optim_bytes * 5 / 4,
            "rank {rank}: zero2 resident {} bytes vs ddp {} — expected ~4x less",
            zero2[rank].optim_bytes,
            ddp[rank].optim_bytes
        );
        assert!(
            zero2[rank].optim_bytes > 0,
            "rank {rank} reported an empty optimizer shard"
        );
    }
}

#[test]
fn launcher_rejects_unknown_strategy_at_parse_time() {
    // A typo must die in the CLI parser with the typed message, before any
    // worker process is spawned.
    let output = Command::new(LAUNCH)
        .args(["--world", "4", "--demo", "--strategy", "zero3"])
        .output()
        .expect("running dear-launch");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("bad --strategy zero3") && stderr.contains("unknown strategy"),
        "expected the typed parse error, got:\n{stderr}"
    );
}

#[test]
fn killing_one_worker_fails_the_world_without_hanging() {
    let start = Instant::now();
    let output = Command::new(LAUNCH)
        .args([
            "--world",
            "4",
            "--demo",
            "--steps",
            "400",
            "--timeout-secs",
            "120",
        ])
        // Rank 2 dies abruptly mid-training (process::exit — at the network
        // layer indistinguishable from a kill). Survivors must surface a
        // transport error within the configured recv deadline, and the
        // launcher must kill the rest and exit non-zero.
        .env("DEAR_DEMO_EXIT_RANK", "2")
        .env("DEAR_DEMO_EXIT_AT_STEP", "150")
        .env("DEAR_RECV_TIMEOUT_MS", "10000")
        .output()
        .expect("running dear-launch");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "launch unexpectedly succeeded; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("rank 2 failed") || stderr.contains("rank=2 dying"),
        "failure not attributed to rank 2:\n{stderr}"
    );
    // Well inside the 120 s harness timeout: disconnects propagate
    // immediately; 10 s of recv deadline is the worst case backstop.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "failure took {:?} to propagate",
        start.elapsed()
    );
}

#[test]
fn launcher_rejects_bad_usage() {
    for args in [&["--world", "2"][..], &["--demo"][..]] {
        let output = Command::new(LAUNCH)
            .args(args)
            .output()
            .expect("running dear-launch");
        assert!(!output.status.success(), "args {args:?} should fail");
    }
}

//! End-to-end elastic-training acceptance tests: the real `dear-launch`
//! binary, four OS processes, checkpoints on disk, a worker killed
//! mid-training — and the supervised restart must converge to **bitwise**
//! the same final loss and parameters as an uninterrupted run.

use std::process::Command;
use std::time::{Duration, Instant};

const LAUNCH: &str = env!("CARGO_BIN_EXE_dear-launch");

#[derive(Debug, Clone)]
struct RankLine {
    rank: usize,
    eval_loss: String,
    params_hash: String,
}

fn parse_lines(stdout: &str) -> Vec<RankLine> {
    let mut out = Vec::new();
    for line in stdout.lines().filter(|l| l.starts_with("dear-demo rank=")) {
        let field = |key: &str| -> String {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
                .to_string()
        };
        out.push(RankLine {
            rank: field("rank").parse().unwrap(),
            eval_loss: field("eval_loss"),
            params_hash: field("params_hash"),
        });
    }
    out
}

/// Runs the 4-rank, 25-step demo with checkpointing into `ckpt_dir` and
/// `extra` environment/flags, returning (stdout, stderr, success).
fn run_demo(
    ckpt_dir: &std::path::Path,
    args: &[&str],
    env: &[(&str, &str)],
) -> (String, String, bool) {
    let mut cmd = Command::new(LAUNCH);
    cmd.args([
        "--world",
        "4",
        "--demo",
        "--steps",
        "25",
        "--timeout-secs",
        "120",
        "--ckpt-dir",
    ])
    .arg(ckpt_dir)
    .args(["--ckpt-every", "5"])
    .args(args)
    .env("DEAR_RECV_TIMEOUT_MS", "15000");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("running dear-launch");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

/// All rank lines must agree bit-for-bit, every rank 0..4 must appear, and
/// the (loss, hash) pair is returned for cross-run comparison.
fn consensus(stdout: &str, context: &str) -> (String, String) {
    let lines = parse_lines(stdout);
    assert!(
        lines.len() >= 4,
        "{context}: expected >=4 rank lines in:\n{stdout}"
    );
    for r in 0..4 {
        assert!(
            lines.iter().any(|l| l.rank == r),
            "{context}: rank {r} missing in:\n{stdout}"
        );
    }
    for l in &lines {
        assert_eq!(
            l.eval_loss, lines[0].eval_loss,
            "{context}: losses diverged"
        );
        assert_eq!(
            l.params_hash, lines[0].params_hash,
            "{context}: params diverged"
        );
    }
    (lines[0].eval_loss.clone(), lines[0].params_hash.clone())
}

/// The headline acceptance test: a rank is killed at a pseudo-random step
/// of generation 0; the supervisor relaunches the world, every rank resumes
/// from the newest checkpoint all ranks hold, and the final model is
/// **bitwise identical** to an uninterrupted run with the same checkpoint
/// cadence.
#[test]
fn killed_world_resumes_from_checkpoint_and_matches_uninterrupted_run() {
    let start = Instant::now();
    let tmp = tempdir("elastic-accept");
    let baseline_dir = tmp.join("baseline");
    let elastic_dir = tmp.join("elastic");

    let (stdout, stderr, ok) = run_demo(&baseline_dir, &[], &[]);
    assert!(
        ok,
        "baseline run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    let (base_loss, base_hash) = consensus(&stdout, "baseline");

    // A different kill step each CI run (but >= 6, so at least one
    // checkpoint boundary has passed); resume must work from any of them.
    let kill_step = 6 + u64::from(std::process::id()) % 12;
    let kill_step = kill_step.to_string();
    let (stdout, stderr, ok) = run_demo(
        &elastic_dir,
        &["--max-restarts", "2", "--backoff-ms", "50"],
        &[
            ("DEAR_DEMO_EXIT_RANK", "1"),
            ("DEAR_DEMO_EXIT_AT_STEP", &kill_step),
        ],
    );
    assert!(
        ok,
        "elastic run (kill at step {kill_step}) failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("dying abruptly at step"),
        "the injected kill never fired:\n{stderr}"
    );
    assert!(
        stderr.contains("resuming from checkpoint at step"),
        "no rank resumed from a checkpoint:\n{stderr}"
    );
    let (loss, hash) = consensus(&stdout, "elastic");
    assert_eq!(
        (loss, hash),
        (base_loss, base_hash),
        "restarted training did not reproduce the uninterrupted run bit-for-bit\n\
         kill step: {kill_step}\nstderr:\n{stderr}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(150),
        "acceptance test took {:?}",
        start.elapsed()
    );
}

/// Chaos harness: seeded kills/stalls injected by the supervisor itself.
/// Whatever the plan does, checkpoints + restarts must land the world on
/// the same final parameters as a calm run.
#[test]
fn training_under_chaos_matches_the_unperturbed_run() {
    let tmp = tempdir("elastic-chaos");
    let calm_dir = tmp.join("calm");
    let chaos_dir = tmp.join("chaos");

    let (stdout, stderr, ok) = run_demo(&calm_dir, &[], &[]);
    assert!(ok, "calm run failed\nstdout:\n{stdout}\nstderr:\n{stderr}");
    let calm = consensus(&stdout, "calm");

    let (stdout, stderr, ok) = run_demo(
        &chaos_dir,
        &[
            "--max-restarts",
            "4",
            "--backoff-ms",
            "50",
            "--chaos",
            "2",
            "--chaos-seed",
            "7",
            "--chaos-window-ms",
            "1500",
        ],
        &[],
    );
    assert!(ok, "chaos run failed\nstdout:\n{stdout}\nstderr:\n{stderr}");
    let chaotic = consensus(&stdout, "chaos");
    assert_eq!(
        chaotic, calm,
        "chaos run diverged from the calm run\nstderr:\n{stderr}"
    );
}

/// A world whose first generation fails before any checkpoint exists must
/// restart from scratch and still finish cleanly.
#[test]
fn restart_without_checkpoints_starts_fresh_and_succeeds() {
    let tmp = tempdir("elastic-fresh");
    let dir = tmp.join("fresh");
    // Kill at step 3 — before the first checkpoint boundary (step 5).
    let (stdout, stderr, ok) = run_demo(
        &dir,
        &["--max-restarts", "1", "--backoff-ms", "50"],
        &[
            ("DEAR_DEMO_EXIT_RANK", "3"),
            ("DEAR_DEMO_EXIT_AT_STEP", "3"),
        ],
    );
    assert!(
        ok,
        "fresh-restart run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("resuming from checkpoint"),
        "nothing should have been resumable:\n{stderr}"
    );
    consensus(&stdout, "fresh restart");
}

/// The restart budget is real: with zero restarts allowed, a killed world
/// fails the launch — promptly, not by hanging.
#[test]
fn spent_restart_budget_fails_the_launch() {
    let start = Instant::now();
    let tmp = tempdir("elastic-budget");
    let dir = tmp.join("budget");
    let (stdout, stderr, ok) = run_demo(
        &dir,
        &["--max-restarts", "0", "--backoff-ms", "50"],
        &[
            ("DEAR_DEMO_EXIT_RANK", "0"),
            ("DEAR_DEMO_EXIT_AT_STEP", "7"),
        ],
    );
    assert!(
        !ok,
        "launch should have failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("restart budget"),
        "failure should name the spent budget:\n{stderr}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "budget failure took {:?}",
        start.elapsed()
    );
}

/// A fresh per-test scratch directory under the target-adjacent tempdir;
/// cleaned up lazily by the OS, unique per process so parallel test
/// binaries never collide.
fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dear-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

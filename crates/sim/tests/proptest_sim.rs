//! Property-based tests for the simulation substrate: timeline stream
//! serialization, exposed-time interval arithmetic against a brute-force
//! oracle, and event-kernel ordering.

use dear_sim::{EventSim, SimDuration, SimTime, TaskKind, Timeline};
use proptest::prelude::*;

/// A random task description: (stream, kind, duration_ns, dep_back).
type TaskDesc = (u8, u8, u64, u8);

fn kind_of(code: u8) -> TaskKind {
    match code % 4 {
        0 => TaskKind::FeedForward,
        1 => TaskKind::Backprop,
        2 => TaskKind::Communication,
        _ => TaskKind::Other,
    }
}

fn build_timeline(streams: usize, descs: &[TaskDesc]) -> Timeline {
    let mut tl = Timeline::new();
    let stream_ids: Vec<_> = (0..streams)
        .map(|i| tl.add_stream(format!("s{i}")))
        .collect();
    let mut ids = Vec::new();
    for &(s, k, d, dep_back) in descs {
        let deps: Vec<_> = if dep_back > 0 && !ids.is_empty() {
            let idx = ids.len().saturating_sub(dep_back as usize);
            vec![ids[idx.min(ids.len() - 1)]]
        } else {
            Vec::new()
        };
        let id = tl.schedule(
            stream_ids[(s as usize) % streams],
            "t",
            kind_of(k),
            SimDuration::from_nanos(d % 10_000 + 1),
            &deps,
        );
        ids.push(id);
    }
    tl
}

/// Brute-force exposed time at 1 ns resolution (tasks are small).
fn brute_force_exposed(tl: &Timeline, kind: TaskKind, cover: &[TaskKind]) -> u64 {
    let end = tl.finish_time().as_nanos();
    let mut covered = vec![false; end as usize + 1];
    for t in tl.tasks().iter().filter(|t| cover.contains(&t.kind)) {
        for ns in t.start.as_nanos()..t.end.as_nanos() {
            covered[ns as usize] = true;
        }
    }
    let mut exposed = 0;
    for t in tl.tasks().iter().filter(|t| t.kind == kind) {
        for ns in t.start.as_nanos()..t.end.as_nanos() {
            if !covered[ns as usize] {
                exposed += 1;
            }
        }
    }
    exposed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streams_never_overlap(
        streams in 1usize..4,
        descs in prop::collection::vec(any::<TaskDesc>(), 1..40),
    ) {
        let tl = build_timeline(streams, &descs);
        tl.assert_streams_serial();
    }

    #[test]
    fn dependencies_precede_dependents(
        streams in 1usize..4,
        descs in prop::collection::vec(any::<TaskDesc>(), 1..30),
    ) {
        let tl = build_timeline(streams, &descs);
        // Makespan equals the latest task end; all tasks start at or after 0.
        let mut latest = SimTime::ZERO;
        for t in tl.tasks() {
            prop_assert!(t.end > t.start);
            latest = latest.max(t.end);
        }
        prop_assert_eq!(tl.finish_time(), latest);
    }

    #[test]
    fn exposed_time_matches_brute_force(
        streams in 2usize..4,
        descs in prop::collection::vec(any::<TaskDesc>(), 1..25),
    ) {
        let tl = build_timeline(streams, &descs);
        let cover = [TaskKind::FeedForward, TaskKind::Backprop];
        let fast = tl.exposed_time(TaskKind::Communication, &cover).as_nanos();
        let slow = brute_force_exposed(&tl, TaskKind::Communication, &cover);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn busy_time_partitions_across_kinds(
        streams in 1usize..3,
        descs in prop::collection::vec(any::<TaskDesc>(), 1..30),
    ) {
        let tl = build_timeline(streams, &descs);
        let total: u64 = tl.tasks().iter().map(|t| t.duration().as_nanos()).sum();
        let by_kind: u64 = [
            TaskKind::FeedForward,
            TaskKind::Backprop,
            TaskKind::Communication,
            TaskKind::Other,
        ]
        .iter()
        .map(|&k| tl.busy_time(k).as_nanos())
        .sum();
        prop_assert_eq!(total, by_kind);
    }

    #[test]
    fn event_kernel_delivers_sorted(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut sim = EventSim::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), (t, i));
        }
        let mut seen: Vec<(u64, usize)> = Vec::new();
        sim.run(|s, ev| {
            assert_eq!(s.now().as_nanos(), ev.0);
            seen.push(ev);
        });
        // Delivered sorted by time, FIFO within equal times.
        for w in seen.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
        prop_assert_eq!(seen.len(), times.len());
    }
}

//! Dependency-driven timeline construction.
//!
//! Training-iteration schedulers are simulated by placing *tasks* onto
//! *streams* (serially-occupied resources such as a GPU compute stream or a
//! NIC communication stream). A task starts at the latest of (a) the time its
//! stream becomes free and (b) the finish times of all its dependencies; it
//! then occupies the stream for its duration. This models exactly the
//! DAG-plus-FIFO-queue semantics of CUDA streams and NCCL communicators that
//! the DeAR paper's timelines (Figs. 1 and 2) describe.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Identifies a stream within a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub usize);

/// Identifies a scheduled task within a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// Broad classification of a task, used by breakdown reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Feed-forward computation.
    FeedForward,
    /// Backpropagation computation.
    Backprop,
    /// Communication (any collective phase).
    Communication,
    /// Anything else (parameter update, synchronization, bookkeeping).
    Other,
}

/// A task as recorded on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task id (position in the timeline's task list).
    pub id: TaskId,
    /// Stream the task occupied.
    pub stream: StreamId,
    /// Human-readable label, e.g. `"BP[12]"` or `"RS[g3]"`.
    pub label: String,
    /// Classification for breakdowns.
    pub kind: TaskKind,
    /// Start instant.
    pub start: SimTime,
    /// Finish instant (`start + duration`).
    pub end: SimTime,
}

impl Task {
    /// The task's duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A named serially-occupied resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stream {
    name: String,
    free_at: SimTime,
}

/// A deterministic task timeline over a set of streams.
///
/// # Examples
///
/// ```
/// use dear_sim::{SimDuration, TaskKind, Timeline};
///
/// let mut tl = Timeline::new();
/// let compute = tl.add_stream("compute");
/// let comm = tl.add_stream("comm");
/// let bp = tl.schedule(compute, "BP", TaskKind::Backprop, SimDuration::from_micros(100), &[]);
/// // The all-reduce depends on BP finishing but runs on the comm stream.
/// let ar = tl.schedule(comm, "AR", TaskKind::Communication, SimDuration::from_micros(40), &[bp]);
/// assert_eq!(tl.task(ar).start, tl.task(bp).end);
/// assert_eq!(tl.makespan(), SimDuration::from_micros(140));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    streams: Vec<Stream>,
    tasks: Vec<Task>,
}

impl Timeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Adds a stream named `name`, free from time zero.
    pub fn add_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(Stream {
            name: name.into(),
            free_at: SimTime::ZERO,
        });
        StreamId(self.streams.len() - 1)
    }

    /// Number of streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The name given to `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` does not belong to this timeline.
    #[must_use]
    pub fn stream_name(&self, stream: StreamId) -> &str {
        &self.streams[stream.0].name
    }

    /// The time at which `stream` becomes free.
    #[must_use]
    pub fn stream_free_at(&self, stream: StreamId) -> SimTime {
        self.streams[stream.0].free_at
    }

    /// Schedules a task on `stream`, starting no earlier than the finish of
    /// every dependency and the stream's own availability.
    ///
    /// Returns the new task's id.
    ///
    /// # Panics
    ///
    /// Panics if `stream` or any dependency id is invalid.
    pub fn schedule(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        kind: TaskKind,
        duration: SimDuration,
        deps: &[TaskId],
    ) -> TaskId {
        self.schedule_not_before(stream, label, kind, duration, deps, SimTime::ZERO)
    }

    /// Like [`Timeline::schedule`] but with an additional explicit
    /// earliest-start constraint.
    pub fn schedule_not_before(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        kind: TaskKind,
        duration: SimDuration,
        deps: &[TaskId],
        not_before: SimTime,
    ) -> TaskId {
        let mut start = self.streams[stream.0].free_at.max(not_before);
        for dep in deps {
            start = start.max(self.tasks[dep.0].end);
        }
        let end = start + duration;
        self.streams[stream.0].free_at = end;
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            stream,
            label: label.into(),
            kind,
            start,
            end,
        });
        id
    }

    /// Records a task with explicit *measured* start and end instants,
    /// bypassing the dependency/stream-availability scheduler.
    ///
    /// This is how wall-clock spans captured from a real run (see
    /// `dear-core::trace`) enter a timeline so that [`Timeline::exposed_time`],
    /// [`Timeline::busy_time`], [`Timeline::assert_streams_serial`] and the
    /// Chrome-trace export all apply to measured data unchanged. The stream's
    /// `free_at` is advanced to `end` if the span extends it, so mixing
    /// recorded and scheduled tasks stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is invalid or `end < start`.
    pub fn record_span(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        kind: TaskKind,
        start: SimTime,
        end: SimTime,
    ) -> TaskId {
        assert!(end >= start, "record_span: end precedes start");
        let free_at = &mut self.streams[stream.0].free_at;
        *free_at = (*free_at).max(end);
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            stream,
            label: label.into(),
            kind,
            start,
            end,
        });
        id
    }

    /// The recorded task for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this timeline.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// All tasks in scheduling order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The finish time of the latest task (time zero if empty).
    #[must_use]
    pub fn finish_time(&self) -> SimTime {
        self.tasks
            .iter()
            .map(|t| t.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total simulated span from time zero to the latest finish.
    #[must_use]
    pub fn makespan(&self) -> SimDuration {
        self.finish_time() - SimTime::ZERO
    }

    /// Sum of task durations of the given kind across all streams.
    #[must_use]
    pub fn busy_time(&self, kind: TaskKind) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(Task::duration)
            .sum()
    }

    /// Sum of task durations on one stream.
    #[must_use]
    pub fn stream_busy_time(&self, stream: StreamId) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.stream == stream)
            .map(Task::duration)
            .sum()
    }

    /// The portion of tasks of `kind` **not** overlapped by any task of
    /// `other` — e.g. exposed communication time not hidden by computation.
    ///
    /// Computed by interval arithmetic over the union of `other` intervals.
    #[must_use]
    pub fn exposed_time(&self, kind: TaskKind, other: &[TaskKind]) -> SimDuration {
        self.exposed_time_filtered(|t| t.kind == kind, other)
    }

    /// Like [`Timeline::exposed_time`], but the measured tasks are selected
    /// by an arbitrary predicate (e.g. only reduce-scatter tasks by label).
    #[must_use]
    pub fn exposed_time_filtered(
        &self,
        select: impl Fn(&Task) -> bool,
        other: &[TaskKind],
    ) -> SimDuration {
        let mut cover: Vec<(SimTime, SimTime)> = self
            .tasks
            .iter()
            .filter(|t| other.contains(&t.kind))
            .map(|t| (t.start, t.end))
            .collect();
        cover.sort();
        // Merge the cover into disjoint intervals.
        let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
        for (s, e) in cover {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut exposed = SimDuration::ZERO;
        for t in self.tasks.iter().filter(|t| select(t)) {
            let mut cursor = t.start;
            for &(cs, ce) in &merged {
                if ce <= cursor {
                    continue;
                }
                if cs >= t.end {
                    break;
                }
                if cs > cursor {
                    exposed += cs.min(t.end) - cursor;
                }
                cursor = cursor.max(ce.min(t.end));
                if cursor >= t.end {
                    break;
                }
            }
            if cursor < t.end {
                exposed += t.end - cursor;
            }
        }
        exposed
    }

    /// Renders an ASCII Gantt chart, one row per stream, `width` columns.
    ///
    /// Intended for debugging and example output, not parsing.
    #[must_use]
    pub fn render_gantt(&self, width: usize) -> String {
        let total = self.makespan().as_nanos().max(1);
        let name_w = self.streams.iter().map(|s| s.name.len()).max().unwrap_or(0);
        let mut rows = String::new();
        for (idx, s) in self.streams.iter().enumerate() {
            let mut row = vec![b'.'; width];
            for t in self.tasks.iter().filter(|t| t.stream == StreamId(idx)) {
                let a = (t.start.as_nanos() * width as u64 / total) as usize;
                let b = ((t.end.as_nanos() * width as u64).div_ceil(total) as usize).min(width);
                let ch = t.label.bytes().next().unwrap_or(b'#');
                for cell in &mut row[a..b.max(a + 1).min(width)] {
                    *cell = ch;
                }
            }
            rows.push_str(&format!(
                "{:<name_w$} |{}|\n",
                s.name,
                String::from_utf8_lossy(&row)
            ));
        }
        rows
    }

    /// Per-kind totals, convenient for quick reporting.
    #[must_use]
    pub fn kind_totals(&self) -> HashMap<TaskKind, SimDuration> {
        let mut map = HashMap::new();
        for t in &self.tasks {
            *map.entry(t.kind).or_insert(SimDuration::ZERO) += t.duration();
        }
        map
    }

    /// Asserts that no two tasks on the same stream overlap. Used by tests.
    ///
    /// # Panics
    ///
    /// Panics (with a descriptive message) if two tasks overlap.
    pub fn assert_streams_serial(&self) {
        let mut per_stream: HashMap<StreamId, Vec<&Task>> = HashMap::new();
        for t in &self.tasks {
            per_stream.entry(t.stream).or_default().push(t);
        }
        for (stream, mut tasks) in per_stream {
            tasks.sort_by_key(|t| t.start);
            for pair in tasks.windows(2) {
                assert!(
                    pair[0].end <= pair[1].start,
                    "tasks {:?} and {:?} overlap on stream {:?}",
                    pair[0].label,
                    pair[1].label,
                    stream
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn tasks_on_one_stream_serialize() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("s");
        let a = tl.schedule(s, "a", TaskKind::Other, us(10), &[]);
        let b = tl.schedule(s, "b", TaskKind::Other, us(5), &[]);
        assert_eq!(tl.task(b).start, tl.task(a).end);
        tl.assert_streams_serial();
    }

    #[test]
    fn dependencies_delay_start_across_streams() {
        let mut tl = Timeline::new();
        let s1 = tl.add_stream("compute");
        let s2 = tl.add_stream("comm");
        let a = tl.schedule(s1, "a", TaskKind::Backprop, us(10), &[]);
        let b = tl.schedule(s2, "b", TaskKind::Communication, us(3), &[a]);
        assert_eq!(tl.task(b).start.as_nanos(), 10_000);
        assert_eq!(tl.makespan(), us(13));
    }

    #[test]
    fn not_before_constraint_applies() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("s");
        let t = tl.schedule_not_before(
            s,
            "x",
            TaskKind::Other,
            us(1),
            &[],
            SimTime::from_nanos(42_000),
        );
        assert_eq!(tl.task(t).start.as_nanos(), 42_000);
    }

    #[test]
    fn exposed_time_full_overlap_is_zero() {
        let mut tl = Timeline::new();
        let c = tl.add_stream("compute");
        let n = tl.add_stream("comm");
        let bp = tl.schedule(c, "bp", TaskKind::Backprop, us(100), &[]);
        let _ar = tl.schedule(n, "ar", TaskKind::Communication, us(40), &[]);
        let _ = bp;
        assert_eq!(
            tl.exposed_time(TaskKind::Communication, &[TaskKind::Backprop]),
            SimDuration::ZERO
        );
    }

    #[test]
    fn exposed_time_partial_overlap() {
        let mut tl = Timeline::new();
        let c = tl.add_stream("compute");
        let n = tl.add_stream("comm");
        // compute busy [0, 50); comm busy [30, 90) => exposed = 40us.
        let _ = tl.schedule(c, "bp", TaskKind::Backprop, us(50), &[]);
        let _ = tl.schedule_not_before(
            n,
            "ar",
            TaskKind::Communication,
            us(60),
            &[],
            SimTime::from_nanos(30_000),
        );
        assert_eq!(
            tl.exposed_time(TaskKind::Communication, &[TaskKind::Backprop]),
            us(40)
        );
    }

    #[test]
    fn exposed_time_with_disjoint_cover_pieces() {
        let mut tl = Timeline::new();
        let c = tl.add_stream("compute");
        let n = tl.add_stream("comm");
        // compute busy [0,10) and [20,30); comm busy [0,30) => exposed 10.
        let _ = tl.schedule(c, "ff1", TaskKind::FeedForward, us(10), &[]);
        let _ = tl.schedule_not_before(
            c,
            "ff2",
            TaskKind::FeedForward,
            us(10),
            &[],
            SimTime::from_nanos(20_000),
        );
        let _ = tl.schedule(n, "ar", TaskKind::Communication, us(30), &[]);
        assert_eq!(
            tl.exposed_time(TaskKind::Communication, &[TaskKind::FeedForward]),
            us(10)
        );
    }

    #[test]
    fn busy_time_sums_by_kind() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("s");
        tl.schedule(s, "a", TaskKind::FeedForward, us(5), &[]);
        tl.schedule(s, "b", TaskKind::FeedForward, us(7), &[]);
        tl.schedule(s, "c", TaskKind::Backprop, us(11), &[]);
        assert_eq!(tl.busy_time(TaskKind::FeedForward), us(12));
        assert_eq!(tl.busy_time(TaskKind::Backprop), us(11));
        assert_eq!(tl.stream_busy_time(StreamId(0)), us(23));
        let totals = tl.kind_totals();
        assert_eq!(totals[&TaskKind::FeedForward], us(12));
    }

    #[test]
    fn record_span_places_task_at_measured_times() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("comm");
        let t = tl.record_span(
            s,
            "OP1",
            TaskKind::Communication,
            SimTime::from_nanos(5_000),
            SimTime::from_nanos(9_000),
        );
        assert_eq!(tl.task(t).start.as_nanos(), 5_000);
        assert_eq!(tl.task(t).end.as_nanos(), 9_000);
        assert_eq!(tl.stream_free_at(s).as_nanos(), 9_000);
        // A scheduled task afterwards queues behind the recorded span.
        let u = tl.schedule(s, "next", TaskKind::Other, us(1), &[]);
        assert_eq!(tl.task(u).start.as_nanos(), 9_000);
        tl.assert_streams_serial();
    }

    #[test]
    fn record_span_feeds_exposed_time() {
        let mut tl = Timeline::new();
        let c = tl.add_stream("compute");
        let n = tl.add_stream("comm");
        // compute [0,50); comm [30,90) — same shape as the scheduled-path
        // test above, but entered as measured spans.
        tl.record_span(
            c,
            "bp",
            TaskKind::Backprop,
            SimTime::ZERO,
            SimTime::from_nanos(50_000),
        );
        tl.record_span(
            n,
            "ar",
            TaskKind::Communication,
            SimTime::from_nanos(30_000),
            SimTime::from_nanos(90_000),
        );
        assert_eq!(
            tl.exposed_time(TaskKind::Communication, &[TaskKind::Backprop]),
            us(40)
        );
    }

    #[test]
    #[should_panic(expected = "end precedes start")]
    fn record_span_rejects_negative_duration() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("s");
        tl.record_span(
            s,
            "bad",
            TaskKind::Other,
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
        );
    }

    #[test]
    fn gantt_renders_rows() {
        let mut tl = Timeline::new();
        let s1 = tl.add_stream("compute");
        let s2 = tl.add_stream("comm");
        tl.schedule(s1, "B", TaskKind::Backprop, us(10), &[]);
        tl.schedule(s2, "R", TaskKind::Communication, us(10), &[]);
        let g = tl.render_gantt(20);
        assert!(g.contains("compute"));
        assert!(g.contains('B'));
        assert!(g.contains('R'));
        assert_eq!(g.lines().count(), 2);
    }
}

//! # dear-sim — deterministic simulation substrate
//!
//! A tiny, deterministic discrete-event simulation toolkit used throughout
//! the DeAR reproduction to model distributed-training iteration timelines:
//!
//! - [`SimTime`] / [`SimDuration`]: integer-nanosecond clock types.
//! - [`EventSim`]: a classic event-heap kernel with FIFO tie-breaking.
//! - [`Timeline`]: dependency-driven placement of tasks onto
//!   serially-occupied streams (GPU compute stream, NIC communication
//!   stream), with breakdown queries such as *exposed communication time* —
//!   the quantity plotted in the paper's Fig. 8.
//! - [`stats`]: summary statistics for the experiment harness.
//!
//! # Examples
//!
//! Build the classic WFBP picture — backprop tasks on a compute stream with
//! each layer's all-reduce chasing it on the communication stream:
//!
//! ```
//! use dear_sim::{SimDuration, TaskKind, Timeline};
//!
//! let mut tl = Timeline::new();
//! let compute = tl.add_stream("gpu");
//! let comm = tl.add_stream("nic");
//! let mut prev = None;
//! for layer in (0..4).rev() {
//!     let bp = tl.schedule(
//!         compute,
//!         format!("BP[{layer}]"),
//!         TaskKind::Backprop,
//!         SimDuration::from_micros(100),
//!         &[],
//!     );
//!     let deps: Vec<_> = prev.into_iter().chain(Some(bp)).collect();
//!     prev = Some(tl.schedule(
//!         comm,
//!         format!("AR[{layer}]"),
//!         TaskKind::Communication,
//!         SimDuration::from_micros(60),
//!         &deps,
//!     ));
//! }
//! // Communication is partially hidden behind backprop.
//! let exposed = tl.exposed_time(TaskKind::Communication, &[TaskKind::Backprop]);
//! assert!(exposed < tl.busy_time(TaskKind::Communication));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
pub mod stats;
mod time;
mod timeline;
pub mod trace;

pub use engine::EventSim;
pub use time::{SimDuration, SimTime};
pub use timeline::{StreamId, Task, TaskId, TaskKind, Timeline};

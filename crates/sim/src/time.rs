//! Simulated-time primitives.
//!
//! All simulation arithmetic is carried out in integer nanoseconds to keep
//! event ordering exact and reproducible; floating-point seconds are only
//! used at the API boundary for convenience.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and overflow-checked in debug builds. Use
/// [`SimTime::ZERO`] as the origin.
///
/// # Examples
///
/// ```
/// use dear_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use dear_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant at `nanos` nanoseconds after the origin.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the instant as whole nanoseconds since the origin.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the origin.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs are clamped to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the span as whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the longer of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the shorter of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns `self - other`, saturating at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(4).to_string(), "4.00us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.00ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn sum_and_scaling() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(
            SimDuration::from_micros(10) * 3u64,
            SimDuration::from_micros(30)
        );
        assert_eq!(
            SimDuration::from_micros(10) / 2,
            SimDuration::from_micros(5)
        );
        assert_eq!(
            SimDuration::from_micros(10) * 0.5,
            SimDuration::from_micros(5)
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(8);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(3);
        let tb = SimTime::from_nanos(8);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}

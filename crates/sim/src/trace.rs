//! Chrome-tracing export: dump a [`Timeline`] as a `chrome://tracing` /
//! Perfetto-compatible JSON array, one complete event per task, one
//! "thread" per stream.

use crate::timeline::Timeline;

/// Serializes the timeline in the Chrome trace-event format (JSON array of
/// complete `"X"` events; timestamps in microseconds).
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev> to
/// inspect schedules visually.
#[must_use]
pub fn to_chrome_trace(tl: &Timeline) -> String {
    to_chrome_trace_with_counters(tl, &[])
}

/// [`to_chrome_trace`] plus one counter (`"C"`) event per `(name, value)`
/// pair, emitted at the timeline's finish time. Real runs use this to attach
/// end-of-run totals (per-peer bytes, send retries, heartbeats) to the same
/// Perfetto dump as the spans.
#[must_use]
pub fn to_chrome_trace_with_counters(tl: &Timeline, counters: &[(String, f64)]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    // Thread-name metadata so streams are labelled.
    for tid in 0..tl.stream_count() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(tl.stream_name(crate::timeline::StreamId(tid)))
        ));
    }
    for task in tl.tasks() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":{},\"cat\":\"{:?}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}}}",
            json_string(&task.label),
            task.kind,
            task.stream.0,
            task.start.as_nanos() as f64 / 1e3,
            task.duration().as_nanos() as f64 / 1e3,
        ));
    }
    let counter_ts = tl.finish_time().as_nanos() as f64 / 1e3;
    for (name, value) in counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":{},\"ph\":\"C\",\"pid\":1,\"ts\":{counter_ts:.3},\
             \"args\":{{\"value\":{value}}}}}",
            json_string(name),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escaping for labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimDuration, TaskKind};

    #[test]
    fn trace_contains_every_task_and_stream() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("compute");
        let b = tl.add_stream("comm");
        tl.schedule(
            a,
            "BP[0]",
            TaskKind::Backprop,
            SimDuration::from_micros(5),
            &[],
        );
        tl.schedule(
            b,
            "RS[0]",
            TaskKind::Communication,
            SimDuration::from_micros(3),
            &[],
        );
        let json = to_chrome_trace(&tl);
        assert!(json.contains("\"BP[0]\""));
        assert!(json.contains("\"RS[0]\""));
        assert!(json.contains("\"compute\""));
        assert!(json.contains("\"comm\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Must be syntactically valid JSON (cheap structural check).
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2); // one per task
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2); // one per stream
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn counters_emit_counter_events() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("net");
        tl.schedule(s, "t", TaskKind::Other, SimDuration::from_micros(2), &[]);
        let counters = vec![
            ("bytes_sent_to_1".to_string(), 4096.0),
            ("send_retries_to_1".to_string(), 3.0),
        ];
        let json = to_chrome_trace_with_counters(&tl, &counters);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2);
        assert!(json.contains("\"bytes_sent_to_1\""));
        assert!(json.contains("\"value\":4096"));
        // Counter events land at the timeline's finish time.
        assert!(json.contains("\"ts\":2.000,\"args\""), "{json}");
    }

    #[test]
    fn durations_are_microseconds() {
        let mut tl = Timeline::new();
        let s = tl.add_stream("s");
        tl.schedule(s, "t", TaskKind::Other, SimDuration::from_micros(7), &[]);
        let json = to_chrome_trace(&tl);
        assert!(json.contains("\"dur\":7.000"), "{json}");
    }
}

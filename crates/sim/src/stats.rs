//! Small statistics helpers used across the experiment harness.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    #[must_use]
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the
/// sorted sample.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "cannot take a quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean of strictly positive observations.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
#[must_use]
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "cannot average an empty sample");
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_single_observation_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[0.0, 1.0]);
    }
}

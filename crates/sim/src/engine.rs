//! A minimal deterministic event-driven simulation kernel.
//!
//! Events carry a user payload `E`; the caller supplies a handler when the
//! simulation is run. Events scheduled for the same instant are delivered in
//! the order they were scheduled (FIFO tie-breaking), which makes runs
//! bit-reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Internal heap entry: min-ordered by `(time, seq)`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation driver.
///
/// # Examples
///
/// ```
/// use dear_sim::{EventSim, SimDuration, SimTime};
///
/// let mut sim = EventSim::new();
/// sim.schedule_at(SimTime::from_nanos(10), "b");
/// sim.schedule_at(SimTime::from_nanos(5), "a");
/// let mut seen = Vec::new();
/// sim.run(|sim, event| {
///     seen.push((sim.now().as_nanos(), event));
///     if event == "a" {
///         sim.schedule_after(SimDuration::from_nanos(2), "a2");
///     }
/// });
/// assert_eq!(seen, vec![(5, "a"), (7, "a2"), (10, "b")]);
/// ```
#[derive(Default)]
pub struct EventSim<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<E>>,
    processed: u64,
}

impl<E> EventSim<E> {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventSim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
        }
    }

    /// The current simulation clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events delivered so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` for delivery at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the simulated past.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "cannot schedule an event in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` for delivery `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its delivery time.
    pub fn step(&mut self) -> Option<E> {
        let entry = self.queue.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.processed += 1;
        Some(entry.payload)
    }

    /// Runs the simulation to completion, delivering every event to
    /// `handler`. The handler may schedule further events.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Self, E),
    {
        while let Some(event) = self.step() {
            handler(self, event);
        }
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are delivered. Returns the number of events delivered.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, E),
    {
        let mut delivered = 0;
        while let Some(entry) = self.queue.peek() {
            if entry.time > deadline {
                break;
            }
            let event = self.step().expect("peeked entry must pop");
            handler(self, event);
            delivered += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        delivered
    }
}

impl<E> std::fmt::Debug for EventSim<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim = EventSim::new();
        sim.schedule_at(SimTime::from_nanos(30), 3);
        sim.schedule_at(SimTime::from_nanos(10), 1);
        sim.schedule_at(SimTime::from_nanos(20), 2);
        let mut order = Vec::new();
        sim.run(|_, e| order.push(e));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_breaking_at_equal_times() {
        let mut sim = EventSim::new();
        for i in 0..100 {
            sim.schedule_at(SimTime::from_nanos(7), i);
        }
        let mut order = Vec::new();
        sim.run(|_, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut sim = EventSim::new();
        sim.schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|sim, depth| {
            count += 1;
            if depth < 5 {
                sim.schedule_after(SimDuration::from_nanos(1), depth + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(sim.now(), SimTime::from_nanos(5));
        assert_eq!(sim.processed(), 6);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = EventSim::new();
        sim.schedule_at(SimTime::from_nanos(5), "early");
        sim.schedule_at(SimTime::from_nanos(15), "late");
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_nanos(10), |_, e| seen.push(e));
        assert_eq!(n, 1);
        assert_eq!(seen, vec!["early"]);
        assert_eq!(sim.now(), SimTime::from_nanos(10));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = EventSim::new();
        sim.schedule_at(SimTime::from_nanos(10), ());
        sim.step();
        sim.schedule_at(SimTime::from_nanos(3), ());
    }
}

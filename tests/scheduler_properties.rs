//! Property-based integration tests: scheduler invariants that must hold
//! for *arbitrary* models, fusion plans, and cluster configurations — not
//! just the five paper models.

use dear::fusion::FusionPlan;
use dear::models::{synthesize, ModelSpec};
use dear::sched::{
    ByteSchedulerSim, ClusterConfig, DearScheduler, MgWfbpScheduler, Scheduler, TensorGeometry,
    WfbpScheduler,
};
use dear_collectives::CostModel;
use proptest::prelude::*;

/// An arbitrary small model spec (kept small so simulation stays fast).
fn arb_model() -> impl Strategy<Value = dear::models::ModelProfile> {
    (
        2usize..40,
        0usize..30,
        1usize..200,
        1u64..2_000,
        0.0f64..5.0,
    )
        .prop_map(|(layers, extra_tensors, params_k, compute_us, growth)| {
            let tensors = (layers + extra_tensors).min(2 * layers);
            synthesize(&ModelSpec {
                name: "prop",
                default_batch_size: 32,
                layers,
                tensors,
                params: params_k * 1_000 + tensors, // ensure >= 1 per tensor
                compute_ms: compute_us as f64 / 1_000.0 + 0.05,
                growth,
                embedding: 0,
            })
        })
}

fn arb_cluster() -> impl Strategy<Value = ClusterConfig> {
    (2usize..65, 100.0f64..50_000.0, 0.01f64..2.0).prop_map(|(workers, alpha, beta)| {
        ClusterConfig::custom(workers, CostModel::new(alpha, beta, 0.0), "prop")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iteration_time_at_least_compute_and_bandwidth_bounds(
        model in arb_model(),
        cluster in arb_cluster(),
    ) {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(WfbpScheduler::unfused()),
            Box::new(WfbpScheduler::horovod()),
            Box::new(MgWfbpScheduler::new()),
            Box::new(ByteSchedulerSim::default()),
            Box::new(DearScheduler::unfused()),
            Box::new(DearScheduler::fixed_buffer(1 << 20)),
        ];
        let bw_bound = cluster
            .network
            .all_reduce_bandwidth_bound(model.gradient_bytes(), cluster.workers);
        for s in schedulers {
            let r = s.simulate(&model, &cluster);
            prop_assert!(
                r.iter_time >= model.compute_time(),
                "{}: iter {} < compute {}", r.scheduler, r.iter_time, model.compute_time()
            );
            prop_assert!(
                r.iter_time >= bw_bound,
                "{}: iter {} < bandwidth bound {}", r.scheduler, r.iter_time, bw_bound
            );
            prop_assert!(r.exposed_comm <= r.total_comm);
            prop_assert!(r.exposed_comm <= r.iter_time);
        }
    }

    #[test]
    fn dear_never_loses_to_wfbp_at_equal_granularity(
        model in arb_model(),
        cluster in arb_cluster(),
        buffer_kb in 1u64..100_000,
    ) {
        // With the *same* fusion plan, DeAR's extra FeedPipe overlap can
        // only help (same total communication, strictly more overlap
        // opportunity).
        let geo = TensorGeometry::new(&model);
        let plan = FusionPlan::by_buffer_bytes(&geo.item_bytes, buffer_kb << 10);
        let wfbp = WfbpScheduler::with_plan("WFBP", plan.clone()).simulate(&model, &cluster);
        let dear = DearScheduler::with_plan("DeAR", plan).simulate(&model, &cluster);
        // Allow a hair of slack for warmup-window rounding.
        prop_assert!(
            dear.iter_time.as_secs_f64() <= wfbp.iter_time.as_secs_f64() * 1.001 + 1e-9,
            "DeAR {} > WFBP {}", dear.iter_time, wfbp.iter_time
        );
    }

    #[test]
    fn dear_total_comm_equals_wfbp_total_comm_at_equal_plan(
        model in arb_model(),
        cluster in arb_cluster(),
        buffer_kb in 1u64..100_000,
    ) {
        // Zero-overhead decoupling: the communication *volume* (stream busy
        // time) is identical — DeAR only moves it around.
        let geo = TensorGeometry::new(&model);
        let plan = FusionPlan::by_buffer_bytes(&geo.item_bytes, buffer_kb << 10);
        let wfbp = WfbpScheduler::with_plan("WFBP", plan.clone()).simulate(&model, &cluster);
        let dear = DearScheduler::with_plan("DeAR", plan).simulate(&model, &cluster);
        let a = wfbp.total_comm.as_secs_f64();
        let b = dear.total_comm.as_secs_f64();
        prop_assert!((a - b).abs() <= 1e-9 + 1e-6 * a.max(b), "WFBP {a} vs DeAR {b}");
    }

    #[test]
    fn single_worker_runs_at_compute_speed(model in arb_model()) {
        let cluster = ClusterConfig::custom(1, CostModel::ten_gbe(), "single");
        for s in [
            Box::new(DearScheduler::fixed_buffer(1 << 20)) as Box<dyn Scheduler>,
            Box::new(WfbpScheduler::horovod()),
        ] {
            let r = s.simulate(&model, &cluster);
            let diff = r.iter_time.as_secs_f64() - model.compute_time().as_secs_f64();
            prop_assert!(diff.abs() < 1e-6, "{}: {diff}", r.scheduler);
        }
    }

    #[test]
    fn fusion_plans_cover_model_tensors_exactly(
        model in arb_model(),
        buffer_kb in 1u64..10_000,
        count in 1usize..20,
    ) {
        let geo = TensorGeometry::new(&model);
        for plan in [
            FusionPlan::by_buffer_bytes(&geo.item_bytes, buffer_kb << 10),
            FusionPlan::by_count(geo.num_items(), count),
            FusionPlan::singletons(geo.num_items()),
            FusionPlan::single_group(geo.num_items()),
        ] {
            plan.validate();
            prop_assert_eq!(plan.len_items(), model.num_tensors());
            // Total bytes across groups equal the model's gradient bytes.
            let total: u64 = (0..plan.num_groups())
                .map(|g| plan.group_bytes(g, &geo.item_bytes))
                .sum();
            prop_assert_eq!(total, model.gradient_bytes());
        }
    }

    #[test]
    fn timelines_keep_streams_serial(
        model in arb_model(),
        cluster in arb_cluster(),
    ) {
        for s in [
            Box::new(DearScheduler::fixed_buffer(512 << 10)) as Box<dyn Scheduler>,
            Box::new(WfbpScheduler::pytorch_ddp()),
            Box::new(ByteSchedulerSim::new(1 << 20)),
            Box::new(MgWfbpScheduler::new()),
        ] {
            let tl = s.build(&model, &cluster, 3);
            tl.assert_streams_serial();
        }
    }

    #[test]
    fn faster_networks_never_slow_any_scheduler(
        model in arb_model(),
        workers in 2usize..33,
        alpha in 500.0f64..30_000.0,
        beta in 0.05f64..1.5,
    ) {
        let slow = ClusterConfig::custom(workers, CostModel::new(alpha, beta, 0.0), "slow");
        let fast = ClusterConfig::custom(
            workers,
            CostModel::new(alpha / 2.0, beta / 2.0, 0.0),
            "fast",
        );
        for s in [
            Box::new(DearScheduler::fixed_buffer(1 << 20)) as Box<dyn Scheduler>,
            Box::new(WfbpScheduler::horovod()),
        ] {
            let r_slow = s.simulate(&model, &slow);
            let r_fast = s.simulate(&model, &fast);
            prop_assert!(
                r_fast.iter_time <= r_slow.iter_time,
                "{}: faster network increased iteration time", r_fast.scheduler
            );
        }
    }
}

//! Integration of the gradient-compression extension (§VI-D future work):
//! distributed training with top-k sparsification + error feedback over
//! the real threaded cluster still converges, and the wire-volume model
//! identifies when compression pays off.

use dear::collectives::{
    compressed_aggregate, compressed_aggregate_wire_bytes, run_cluster, Compressor, ErrorFeedback,
    TopK, Uniform8,
};
use dear::minidnn::{accuracy, softmax_cross_entropy, BlobDataset, Linear, Relu, Sequential, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Linear::new(8, 32, &mut rng))
        .push(Relu::new())
        .push(Linear::new(32, 4, &mut rng))
}

/// One S-SGD training loop where gradient aggregation goes through a lossy
/// compressor with error feedback, synchronously at each step.
fn train_compressed(compressor: impl Compressor + Clone + Send + Sync, steps: u64) -> Vec<f32> {
    let world = 4;
    let global_batch = 32;
    let data = BlobDataset::new(8, 4, 0.4, 17);
    let accs = run_cluster(world, |comm| {
        let mut net = build_net(1);
        let mut opt = Sgd::new(0.1);
        let mut feedback = ErrorFeedback::new();
        for step in 0..steps {
            let (x, labels) = data.shard(step, global_batch, comm.rank(), world);
            net.zero_grads();
            let logits = net.forward(&x);
            let (_, dloss) = softmax_cross_entropy(&logits, &labels);
            net.backward(&dloss);
            // Flatten all gradients, aggregate compressed, write back.
            let mut flat: Vec<f32> = Vec::new();
            for layer in net.layers() {
                for g in layer.grads() {
                    flat.extend_from_slice(g.data());
                }
            }
            compressed_aggregate(comm.transport(), &mut flat, &compressor, &mut feedback)
                .expect("aggregation failed");
            let mut offset = 0;
            for layer in net.layers_mut() {
                for g in layer.grads_mut() {
                    let n = g.len();
                    g.data_mut().copy_from_slice(&flat[offset..offset + n]);
                    offset += n;
                }
            }
            opt.step(&mut net);
        }
        let (x, labels) = data.batch(9_999, 256);
        accuracy(&net.forward(&x), &labels)
    });
    accs
}

#[test]
fn topk_with_error_feedback_converges() {
    let accs = train_compressed(TopK::new(0.1), 120);
    for (rank, acc) in accs.iter().enumerate() {
        assert!(*acc > 0.85, "rank {rank}: accuracy {acc} with 10% top-k");
    }
}

#[test]
fn quantized_training_converges() {
    let accs = train_compressed(Uniform8::new(128), 100);
    for (rank, acc) in accs.iter().enumerate() {
        assert!(
            *acc > 0.85,
            "rank {rank}: accuracy {acc} with 8-bit quantization"
        );
    }
}

#[test]
fn aggressive_sparsification_still_learns_with_feedback() {
    // 2% density: without error feedback this would stall; with it the
    // residual eventually transmits every coordinate.
    let accs = train_compressed(TopK::new(0.02), 200);
    for (rank, acc) in accs.iter().enumerate() {
        assert!(*acc > 0.7, "rank {rank}: accuracy {acc} with 2% top-k");
    }
}

#[test]
fn wire_volume_break_even_matches_theory() {
    // Compression (all-gather based) beats the dense ring all-reduce iff
    // ratio < 2/(P-1) · (P-1)/P ≈ 2/P.
    for world in [4usize, 16, 64] {
        let d = 10_000_000u64;
        let dense = 2.0 * d as f64 * (world - 1) as f64 / world as f64;
        let breakeven = 2.0 / world as f64;
        assert!(
            compressed_aggregate_wire_bytes(d, breakeven * 0.9, world) < dense,
            "world {world}: should win below break-even"
        );
        assert!(
            compressed_aggregate_wire_bytes(d, breakeven * 1.1, world) > dense,
            "world {world}: should lose above break-even"
        );
    }
}

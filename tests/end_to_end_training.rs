//! End-to-end integration: the full DeAR runtime (core + minidnn +
//! collectives) training real models on real threads, checked against
//! single-process S-SGD.

use dear::collectives::CostModel;
use dear::minidnn::{accuracy, BlobDataset, Linear, Relu, Sequential, Tanh};
use dear::{run_training, train_single_reference, DelayConfig, PipelineMode, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Linear::new(10, 32, &mut rng))
        .push(Relu::new())
        .push(Linear::new(32, 24, &mut rng))
        .push(Tanh::new())
        .push(Linear::new(24, 16, &mut rng))
        .push(Relu::new())
        .push(Linear::new(16, 4, &mut rng))
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
        .fold(0.0, f32::max)
}

#[test]
fn dear_equals_reference_across_world_sizes() {
    let data = BlobDataset::new(10, 4, 0.5, 21);
    for world in [1usize, 2, 4, 8] {
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            fusion_buffer: Some(1 << 10),
            ..TrainConfig::default()
        };
        let steps = 12;
        let global_batch = 24;
        let params = run_training(world, config.clone(), |handle| {
            let rank = handle.rank();
            let mut net = build_net(9);
            let mut optim = handle.into_optim(&net);
            for step in 0..steps {
                let (x, labels) = data.shard(step, global_batch, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        for p in &params[1..] {
            assert_eq!(&params[0], p, "world {world}: ranks diverged");
        }
        let mut reference = build_net(9);
        let _ = train_single_reference(
            &mut reference,
            &config,
            (0..steps).map(|s| data.batch(s, global_batch)),
        );
        let diff = max_rel_diff(&params[0], &reference.flat_params());
        assert!(diff < 5e-3, "world {world}: diff {diff}");
    }
}

#[test]
fn dear_and_wfbp_modes_agree_with_each_other() {
    let data = BlobDataset::new(10, 4, 0.5, 33);
    let mut outputs = Vec::new();
    for mode in [PipelineMode::Dear, PipelineMode::Wfbp] {
        let config = TrainConfig {
            lr: 0.1,
            fusion_buffer: Some(2 << 10),
            mode,
            ..TrainConfig::default()
        };
        let params = run_training(4, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(5);
            let mut optim = handle.into_optim(&net);
            for step in 0..10 {
                let (x, labels) = data.shard(step, 16, rank, 4);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        });
        outputs.push(params[0].clone());
    }
    let diff = max_rel_diff(&outputs[0], &outputs[1]);
    assert!(diff < 2e-3, "modes diverged: {diff}");
}

#[test]
fn training_over_emulated_network_still_converges() {
    // Inject small α-β delays (scaled down to keep the test quick): the
    // pipelining must not affect correctness, only timing.
    let data = BlobDataset::new(10, 4, 0.4, 55);
    let config = TrainConfig {
        lr: 0.1,
        fusion_buffer: Some(4 << 10),
        delay: Some(DelayConfig {
            model: CostModel::new(20_000.0, 0.01, 0.0),
            scale: 0.05,
        }),
        ..TrainConfig::default()
    };
    let accs = run_training(3, config, |handle| {
        let rank = handle.rank();
        let mut net = build_net(2);
        let mut optim = handle.into_optim(&net);
        for step in 0..80 {
            let (x, labels) = data.shard(step, 24, rank, 3);
            let _ = optim.train_step(&mut net, &x, &labels);
        }
        optim.synchronize(&mut net).unwrap();
        let (x, labels) = data.batch(99_999, 200);
        accuracy(&net.forward(&x), &labels)
    });
    for (rank, acc) in accs.iter().enumerate() {
        assert!(*acc > 0.8, "rank {rank}: accuracy {acc}");
    }
}

#[test]
fn unfused_and_heavily_fused_agree() {
    let data = BlobDataset::new(10, 4, 0.5, 77);
    let run = |buffer: Option<u64>| {
        let config = TrainConfig {
            lr: 0.05,
            momentum: 0.8,
            fusion_buffer: buffer,
            ..TrainConfig::default()
        };
        run_training(4, config, |handle| {
            let rank = handle.rank();
            let mut net = build_net(8);
            let mut optim = handle.into_optim(&net);
            for step in 0..10 {
                let (x, labels) = data.shard(step, 16, rank, 4);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        })
        .remove(0)
    };
    let unfused = run(None);
    let one_group = run(Some(u64::MAX));
    let diff = max_rel_diff(&unfused, &one_group);
    assert!(diff < 2e-3, "fusion granularity changed results: {diff}");
}

#[test]
fn validation_mid_training_uses_fresh_parameters() {
    // Listing 1: synchronize() before eval must produce rank-identical,
    // up-to-date models even with communication in flight.
    let data = BlobDataset::new(10, 4, 0.4, 88);
    let evals = run_training(4, TrainConfig::default(), |handle| {
        let rank = handle.rank();
        let mut net = build_net(3);
        let mut optim = handle.into_optim(&net);
        let mut checkpoints = Vec::new();
        for step in 0..30 {
            let (x, labels) = data.shard(step, 32, rank, 4);
            let _ = optim.train_step(&mut net, &x, &labels);
            if step % 10 == 9 {
                optim.synchronize(&mut net).unwrap();
                checkpoints.push(net.flat_params());
            }
        }
        checkpoints
    });
    for ranks in evals.windows(2) {
        assert_eq!(ranks[0], ranks[1], "checkpoint mismatch between ranks");
    }
    // Parameters actually change between checkpoints (training progresses).
    let cps = &evals[0];
    for pair in cps.windows(2) {
        assert_ne!(pair[0], pair[1], "parameters frozen between checkpoints");
    }
}

//! The paper's evaluation claims, encoded as integration tests over the
//! simulation stack. Each test names the artifact it guards.

use dear::models::Model;
use dear::sched::analysis::{
    baseline_optimal_iter, dear_optimal_iter, table2_max_speedup, AnalysisInputs,
};
use dear::sched::{
    ByteSchedulerSim, ClusterConfig, DearScheduler, MgWfbpScheduler, Scheduler, WfbpScheduler,
};

#[test]
fn table1_model_statistics_are_exact() {
    let expect = [
        (Model::ResNet50, 64, 107, 161, 25_600_000usize),
        (Model::DenseNet201, 32, 402, 604, 20_000_000),
        (Model::InceptionV4, 64, 299, 449, 42_700_000),
        (Model::BertBase, 64, 105, 206, 110_100_000),
        (Model::BertLarge, 32, 201, 398, 336_200_000),
    ];
    for (m, bs, layers, tensors, params) in expect {
        let p = m.profile();
        assert_eq!(p.batch_size, bs);
        assert_eq!(p.num_layers(), layers);
        assert_eq!(p.num_tensors(), tensors);
        assert_eq!(p.num_params(), params);
    }
}

#[test]
fn table2_smax_rows_match_paper_within_tolerance() {
    let rows_10gbe = [61.6, 64.0, 59.8, 25.5, 12.1];
    let rows_ib = [64.0, 64.0, 64.0, 64.0, 51.8];
    for (cluster, rows) in [
        (ClusterConfig::paper_10gbe(), rows_10gbe),
        (ClusterConfig::paper_100gbib(), rows_ib),
    ] {
        for (m, expected) in Model::ALL.into_iter().zip(rows) {
            let got = table2_max_speedup(&m.profile(), &cluster);
            assert!(
                (got - expected).abs() / expected < 0.04,
                "{} on {}: {got:.1} vs paper {expected}",
                m.name(),
                cluster.label
            );
        }
    }
}

#[test]
fn fig6_dear_beats_wfbp_without_fusion_on_10gbe() {
    let cluster = ClusterConfig::paper_10gbe();
    for m in Model::ALL {
        let model = m.profile();
        let wfbp = WfbpScheduler::unfused().simulate(&model, &cluster);
        let dear = DearScheduler::unfused().simulate(&model, &cluster);
        let gain = wfbp.iter_time.as_secs_f64() / dear.iter_time.as_secs_f64() - 1.0;
        assert!(
            gain > 0.02,
            "{}: DeAR gain only {:.1}%",
            m.name(),
            100.0 * gain
        );
    }
}

#[test]
fn fig6_bytescheduler_underperforms_wfbp_on_cnns_over_10gbe() {
    let cluster = ClusterConfig::paper_10gbe();
    for m in Model::CNNS {
        let model = m.profile();
        let wfbp = WfbpScheduler::unfused().simulate(&model, &cluster);
        let bs = ByteSchedulerSim::default().simulate(&model, &cluster);
        assert!(
            bs.iter_time.as_secs_f64() > 1.05 * wfbp.iter_time.as_secs_f64(),
            "{}: ByteScheduler should trail WFBP clearly",
            m.name()
        );
    }
}

#[test]
fn fig7_dear_beats_every_wfbp_family_baseline_on_10gbe_64gpus() {
    let cluster = ClusterConfig::paper_10gbe();
    for m in Model::ALL {
        let model = m.profile();
        let dear = DearScheduler::with_buffer("DeAR", 25 << 20).simulate(&model, &cluster);
        for baseline in [
            WfbpScheduler::horovod().simulate(&model, &cluster),
            WfbpScheduler::pytorch_ddp().simulate(&model, &cluster),
        ] {
            assert!(
                dear.iter_time < baseline.iter_time,
                "{}: DeAR {} >= {} {}",
                m.name(),
                dear.iter_time,
                baseline.scheduler,
                baseline.iter_time
            );
        }
        // MG-WFBP (with realistic profiling noise) does not beat DeAR by
        // more than a whisker anywhere.
        let mg = MgWfbpScheduler::new().simulate(&model, &cluster);
        assert!(
            mg.iter_time.as_secs_f64() > 0.97 * dear.iter_time.as_secs_f64(),
            "{}: MG-WFBP unreasonably fast",
            m.name()
        );
    }
}

#[test]
fn fig7_gains_are_larger_on_10gbe_than_on_100gbib() {
    // §VI-D/I: the optimization room shrinks as the network gets faster.
    let mut gain_sum = [0.0f64; 2];
    for (i, cluster) in [ClusterConfig::paper_10gbe(), ClusterConfig::paper_100gbib()]
        .iter()
        .enumerate()
    {
        for m in Model::ALL {
            let model = m.profile();
            let horovod = WfbpScheduler::horovod().simulate(&model, cluster);
            let dear = DearScheduler::with_buffer("DeAR", 25 << 20).simulate(&model, cluster);
            gain_sum[i] += horovod.iter_time.as_secs_f64() / dear.iter_time.as_secs_f64() - 1.0;
        }
    }
    assert!(
        gain_sum[0] > 1.5 * gain_sum[1],
        "10GbE total gain {:.3} not clearly above IB {:.3}",
        gain_sum[0],
        gain_sum[1]
    );
}

#[test]
fn fig8_rs_hides_better_than_ag() {
    // §VI-F: reduce-scatter overlaps the (2x longer) backprop, so its
    // exposed share is smaller than all-gather's.
    use dear_sim::TaskKind;
    let cluster = ClusterConfig::paper_10gbe();
    let compute = [TaskKind::FeedForward, TaskKind::Backprop];
    for m in Model::ALL {
        let model = m.profile();
        let sched = DearScheduler::with_buffer("DeAR", 25 << 20);
        let warm = sched.build(&model, &cluster, 2);
        let full = sched.build(&model, &cluster, 6);
        let split = |tl: &dear_sim::Timeline, prefix: &str| {
            tl.exposed_time_filtered(
                |t| t.kind == TaskKind::Communication && t.label.starts_with(prefix),
                &compute,
            )
        };
        let rs = split(&full, "RS").saturating_sub(split(&warm, "RS"));
        let ag = split(&full, "AG").saturating_sub(split(&warm, "AG"));
        assert!(
            rs < ag,
            "{}: RS exposed {} >= AG exposed {}",
            m.name(),
            rs,
            ag
        );
    }
}

#[test]
fn fig9_fusion_indispensable_for_dear() {
    // §VI-G: DeAR-BO achieves 1.35x-4.54x over DeAR w/o TF on 10GbE.
    let cluster = ClusterConfig::paper_10gbe();
    for m in [Model::ResNet50, Model::DenseNet201, Model::BertBase] {
        let model = m.profile();
        let unfused = DearScheduler::unfused().simulate(&model, &cluster);
        let fused = DearScheduler::fixed_buffer(25 << 20).simulate(&model, &cluster);
        let ratio = unfused.iter_time.as_secs_f64() / fused.iter_time.as_secs_f64();
        assert!(ratio > 1.3, "{}: fusion speedup only {ratio:.2}x", m.name());
    }
}

#[test]
fn fig9_nl_fusion_suits_bert_better_than_cnns() {
    // §VI-G: DeAR-NL underperforms DeAR-FB on CNNs (imbalanced layers) but
    // beats it on BERT (balanced layers).
    let cluster = ClusterConfig::paper_10gbe();
    let rel = |m: Model| {
        let model = m.profile();
        let nl = DearScheduler::fixed_layer_count(4).simulate(&model, &cluster);
        let fb = DearScheduler::fixed_buffer(5 << 20).simulate(&model, &cluster);
        fb.iter_time.as_secs_f64() / nl.iter_time.as_secs_f64() // >1: NL wins
    };
    assert!(rel(Model::DenseNet201) < 1.0, "NL should lose on DenseNet");
    assert!(rel(Model::BertBase) > 1.0, "NL should win on BERT-Base");
}

#[test]
fn eq9_gap_never_negative_and_saturates() {
    for ratio in 0..50 {
        let t_ff = 1.0;
        let t_ag = ratio as f64 * 0.1;
        let inputs = AnalysisInputs {
            t_ff,
            t_bp: 2.0,
            t_rs: t_ag,
            t_ag,
        };
        let gap = baseline_optimal_iter(&inputs) - dear_optimal_iter(&inputs);
        assert!(gap >= -1e-12);
        assert!(gap <= t_ff + 1e-12);
    }
}

#[test]
fn fig11_dear_wins_at_every_batch_size() {
    let cluster = ClusterConfig::paper_10gbe();
    for m in [Model::ResNet50, Model::BertBase] {
        for bs in [16usize, 32, 64, 128] {
            let model = m.profile_with_batch(bs);
            let horovod = WfbpScheduler::horovod().simulate(&model, &cluster);
            let dear = DearScheduler::with_buffer("DeAR", 25 << 20).simulate(&model, &cluster);
            assert!(
                dear.iter_time <= horovod.iter_time,
                "{} bs={bs}: DeAR slower than Horovod",
                m.name()
            );
        }
    }
}

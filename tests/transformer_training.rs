//! End-to-end BERT-flavour integration: a transformer block
//! (self-attention, LayerNorm, feed-forward) trained with Adam through the
//! full DeAR pipeline on the real threaded runtime — the workload family
//! behind the paper's NLP rows.

use dear::minidnn::{accuracy, BlobDataset, LayerNorm, Linear, Relu, SelfAttention, Sequential};
use dear::{run_training, OptimKind, PipelineMode, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEQ: usize = 4;
const DIM: usize = 6;
const CLASSES: usize = 3;

fn transformer_block(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let feats = SEQ * DIM;
    Sequential::new()
        .push(SelfAttention::new(SEQ, DIM, &mut rng))
        .push(LayerNorm::new(feats))
        .push(Linear::new(feats, 2 * feats, &mut rng))
        .push(Relu::new())
        .push(Linear::new(2 * feats, feats, &mut rng))
        .push(LayerNorm::new(feats))
        .push(Linear::new(feats, CLASSES, &mut rng))
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
        .fold(0.0, f32::max)
}

#[test]
fn transformer_block_trains_and_matches_reference_under_dear() {
    let data = BlobDataset::new(SEQ * DIM, CLASSES, 0.4, 2024);
    let config = TrainConfig {
        lr: 0.005,
        fusion_buffer: Some(1 << 10),
        optim: OptimKind::adam_default(),
        ..TrainConfig::default()
    };
    let steps = 12u64;
    let params = run_training(4, config, |handle| {
        let rank = handle.rank();
        let mut net = transformer_block(5);
        let mut optim = handle.into_optim(&net);
        for step in 0..steps {
            let (x, labels) = data.shard(step, 32, rank, 4);
            let _ = optim.train_step(&mut net, &x, &labels);
        }
        optim.synchronize(&mut net).unwrap();
        net.flat_params()
    });
    for p in &params[1..] {
        assert_eq!(&params[0], p, "ranks diverged");
    }
    let mut reference = transformer_block(5);
    let mut opt = dear_minidnn::Adam::new(0.005);
    for step in 0..steps {
        let (x, labels) = data.batch(step, 32);
        reference.zero_grads();
        let logits = reference.forward(&x);
        let (_, dloss) = dear_minidnn::softmax_cross_entropy(&logits, &labels);
        reference.backward(&dloss);
        dear_minidnn::Optimizer::step(&mut opt, &mut reference);
    }
    let diff = max_rel_diff(&params[0], &reference.flat_params());
    assert!(diff < 1e-2, "max relative diff {diff}");
}

#[test]
fn transformer_block_reaches_high_accuracy_distributed() {
    let data = BlobDataset::new(SEQ * DIM, CLASSES, 0.5, 77);
    let config = TrainConfig {
        lr: 0.003,
        fusion_buffer: Some(4 << 10),
        optim: OptimKind::adam_default(),
        ..TrainConfig::default()
    };
    let accs = run_training(4, config, |handle| {
        let rank = handle.rank();
        let mut net = transformer_block(9);
        let mut optim = handle.into_optim(&net);
        for step in 0..150 {
            let (x, labels) = data.shard(step, 32, rank, 4);
            let _ = optim.train_step(&mut net, &x, &labels);
        }
        optim.synchronize(&mut net).unwrap();
        let (x, labels) = data.batch(500_000, 256);
        accuracy(&net.forward(&x), &labels)
    });
    for (rank, acc) in accs.iter().enumerate() {
        assert!(*acc > 0.85, "rank {rank}: accuracy {acc}");
    }
}

#[test]
fn transformer_dear_and_wfbp_agree() {
    let data = BlobDataset::new(SEQ * DIM, CLASSES, 0.4, 31);
    let run = |mode: PipelineMode| {
        let config = TrainConfig {
            lr: 0.005,
            fusion_buffer: Some(2 << 10),
            optim: OptimKind::adam_default(),
            mode,
            ..TrainConfig::default()
        };
        run_training(3, config, |handle| {
            let rank = handle.rank();
            let mut net = transformer_block(3);
            let mut optim = handle.into_optim(&net);
            for step in 0..8 {
                let (x, labels) = data.shard(step, 24, rank, 3);
                let _ = optim.train_step(&mut net, &x, &labels);
            }
            optim.synchronize(&mut net).unwrap();
            net.flat_params()
        })
        .remove(0)
    };
    let diff = max_rel_diff(&run(PipelineMode::Dear), &run(PipelineMode::Wfbp));
    assert!(diff < 1e-2, "modes diverged on transformer block: {diff}");
}

//! Quickstart: the paper's Listing 1, in Rust.
//!
//! Trains a small classifier with DeAR on a 4-worker in-process cluster:
//! reduce-scatter overlapped with backprop (BackPipe), sharded optimizer
//! update, all-gather of updated parameters overlapped with the next
//! feed-forward (FeedPipe). Verifies that all workers end with identical
//! models and that the loss decreases.
//!
//! Run with: `cargo run --release --example quickstart`

use dear::{run_training, TrainConfig};
use dear_minidnn::{accuracy, BlobDataset, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_model() -> Sequential {
    // Every rank seeds identically so initial parameters agree (the paper's
    // systems broadcast initial parameters; a shared seed is equivalent).
    let mut rng = StdRng::seed_from_u64(42);
    Sequential::new()
        .push(Linear::new(8, 64, &mut rng))
        .push(Relu::new())
        .push(Linear::new(64, 32, &mut rng))
        .push(Relu::new())
        .push(Linear::new(32, 5, &mut rng))
}

fn main() {
    let world = 4;
    let global_batch = 64;
    let steps = 150;
    let data = BlobDataset::new(8, 5, 0.4, 7);

    // dear.init() + dear.DistOptim(...) from Listing 1:
    let config = TrainConfig {
        lr: 0.1,
        momentum: 0.9,
        fusion_buffer: Some(2 << 10), // 2 KB buffer => several fused groups
        ..TrainConfig::default()
    };

    println!("training on {world} workers, global batch {global_batch}, {steps} steps");
    let results = run_training(world, config, |handle| {
        let rank = handle.rank();
        let mut net = build_model();
        let mut optim = handle.into_optim(&net);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 0..steps {
            let (x, labels) = data.shard(step, global_batch, rank, world);
            let loss = optim.train_step(&mut net, &x, &labels).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
            if rank == 0 && step % 30 == 0 {
                println!(
                    "  step {step:>3}: loss {loss:.4} ({} fusion groups)",
                    optim.num_groups()
                );
            }
        }
        // Listing 1 lines 12-13: synchronize before evaluation.
        optim.synchronize(&mut net).unwrap();
        let (x, labels) = data.batch(1_000_000, 512);
        let acc = accuracy(&net.forward(&x), &labels);
        (
            first_loss.expect("trained at least one step"),
            last_loss,
            acc,
            net.flat_params(),
        )
    });

    let (first, last, acc, params0) = results[0].clone();
    println!(
        "\nrank 0: loss {first:.4} -> {last:.4}, validation accuracy {:.1}%",
        acc * 100.0
    );
    for (rank, (_, _, _, params)) in results.iter().enumerate().skip(1) {
        assert_eq!(
            &params0, params,
            "rank {rank} diverged from rank 0 — S-SGD consistency broken"
        );
    }
    println!("all {world} workers hold bit-identical parameters: S-SGD semantics preserved");
    assert!(last < 0.5 * first, "loss should halve during training");
    assert!(acc > 0.8, "validation accuracy should exceed 80%");
    println!("quickstart OK");
}

//! Online Bayesian-optimization tuning of the fusion buffer during *real*
//! threaded training (§IV-B end-to-end).
//!
//! Rank 0 measures windowed throughput, feeds the GP/EI tuner, and
//! broadcasts each new buffer size; all ranks re-bucket collectively.
//! Optimizer (momentum) state survives every re-bucketing, and training
//! remains numerically consistent across ranks throughout.
//!
//! Run with: `cargo run --release --example bo_tuning`

use dear::fusion::{BayesOpt, Domain};
use dear::tuning::OnlineTuning;
use dear::{run_training, TrainConfig};
use dear_minidnn::{BlobDataset, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new().push(Linear::new(16, 96, &mut rng));
    for _ in 0..4 {
        net = net.push(Relu::new()).push(Linear::new(96, 96, &mut rng));
    }
    net.push(Relu::new()).push(Linear::new(96, 4, &mut rng))
}

fn main() {
    let world = 4;
    let global_batch = 32;
    let window = 10u64; // steps per throughput measurement (as in §IV-B)
    let windows = 8;
    let initial = (64u64 << 10) as f64; // 64 KB to start (tiny model)
    let data = BlobDataset::new(16, 4, 0.4, 5);

    let config = TrainConfig {
        lr: 0.05,
        momentum: 0.9,
        fusion_buffer: Some(initial as u64),
        ..TrainConfig::default()
    };

    println!("online BO tuning on {world} workers: {windows} windows x {window} steps\n");
    let results = run_training(world, config, |handle| {
        let rank = handle.rank();
        let mut net = build_model();
        let mut optim = handle.into_optim(&net);
        // Only rank 0 owns the tuner; a tiny domain suits the tiny model.
        let tuner =
            (rank == 0).then(|| BayesOpt::new(Domain::new(8.0 * 1024.0, 512.0 * 1024.0), 1));
        let mut tuning = OnlineTuning::new(tuner, window, global_batch as f64, initial);
        let mut step = 0u64;
        let mut history = Vec::new();
        for _ in 0..windows {
            loop {
                let (x, labels) = data.shard(step, global_batch, rank, world);
                let _ = optim.train_step(&mut net, &x, &labels);
                step += 1;
                if let Some(throughput) = tuning.on_step() {
                    // Window closed: rank 0 suggests, everyone adopts.
                    optim.synchronize(&mut net).unwrap();
                    let suggestion = tuning.next_suggestion(throughput);
                    let agreed = optim.broadcast_value(0, suggestion);
                    tuning.adopt(agreed);
                    optim.set_fusion_buffer(&net, Some(agreed as u64));
                    if rank == 0 {
                        history.push((throughput, agreed));
                    }
                    break;
                }
            }
        }
        optim.synchronize(&mut net).unwrap();
        (history, net.flat_params())
    });

    let (history, params0) = &results[0];
    for (i, (thr, next)) in history.iter().enumerate() {
        println!(
            "window {:>2}: {:>9.0} samples/s -> next buffer {:>6.0} KB",
            i + 1,
            thr,
            next / 1024.0
        );
    }
    for (rank, (_, params)) in results.iter().enumerate().skip(1) {
        assert_eq!(params0, params, "rank {rank} diverged during tuning");
    }
    println!(
        "\nall ranks consistent across {} re-bucketings: OK",
        history.len()
    );
}

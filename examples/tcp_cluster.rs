//! DeAR training over real TCP sockets.
//!
//! Two ways to run it:
//!
//! - **Single process** (no env): spins up a 4-rank TCP loopback cluster
//!   in one process — real sockets, one thread per rank:
//!   `cargo run --release --example tcp_cluster`
//! - **Multi-process**: launch one process per rank, `torchrun`-style,
//!   with the `dear-launch` supervisor setting `RANK` / `WORLD_SIZE` /
//!   `MASTER_ADDR` / `MASTER_PORT` for each:
//!   `cargo build --release --example tcp_cluster &&
//!    cargo run --release -p dear-net --bin dear-launch -- --world 4 -- \
//!        target/release/examples/tcp_cluster`

use dear::net::{tcp_loopback, NetConfig, TcpEndpoint};
use dear::{run_worker, TrainConfig};
use dear_minidnn::{accuracy, BlobDataset, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_net() -> Sequential {
    let mut rng = StdRng::seed_from_u64(3); // same init on every rank
    Sequential::new()
        .push(Linear::new(6, 32, &mut rng))
        .push(Relu::new())
        .push(Linear::new(32, 16, &mut rng))
        .push(Relu::new())
        .push(Linear::new(16, 3, &mut rng))
}

/// One rank's training loop; identical for loopback and multi-process.
fn train(transport: TcpEndpoint) -> (usize, f32) {
    use dear_collectives::Transport;
    let rank = transport.rank();
    let world = transport.world_size();
    let config = TrainConfig {
        fusion_buffer: Some(2 << 10),
        ..TrainConfig::default()
    };
    let data = BlobDataset::new(6, 3, 0.35, 17);
    run_worker(transport, config, move |handle| {
        let mut net = build_net();
        let mut optim = handle.into_optim(&net);
        for step in 0..60 {
            let (x, labels) = data.shard(step, 16 * world, rank, world);
            let loss = optim.train_step(&mut net, &x, &labels).unwrap();
            if rank == 0 && step % 20 == 0 {
                println!("step {step:3}  rank0 shard loss {loss:.4}");
            }
        }
        optim.synchronize(&mut net).unwrap(); // before validation
        let (x, labels) = data.batch(1_000_000, 256);
        let acc = accuracy(&net.forward(&x), &labels);
        (rank, acc)
    })
}

fn main() {
    if std::env::var("RANK").is_ok() {
        // Launched by `dear-launch` (or by hand with the env set): join the
        // cluster described by the environment as one rank.
        let cfg = NetConfig::from_env().expect("bad rendezvous environment");
        let ep = TcpEndpoint::connect(&cfg).expect("rendezvous failed");
        let (rank, acc) = train(ep);
        println!("rank {rank}: validation accuracy {acc:.3}");
        return;
    }
    // No env: whole cluster in this process, over loopback TCP.
    let world = 4;
    println!("running a {world}-rank TCP loopback cluster in one process");
    let endpoints = tcp_loopback(world).expect("loopback rendezvous failed");
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| s.spawn(move || train(ep)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect::<Vec<_>>()
    });
    for (rank, acc) in results {
        println!("rank {rank}: validation accuracy {acc:.3}");
    }
}

//! Scheduler shoot-out on a simulated 64-GPU cluster.
//!
//! Simulates one of the paper's workloads (ResNet-50 by default; pass a
//! model name as the first argument) across every scheduler on both of the
//! paper's interconnects, printing iteration times, exposed communication,
//! speedups, and a Gantt sketch of the DeAR pipeline.
//!
//! Run with: `cargo run --release --example cluster_comparison [model]`
//! where `model` is one of `resnet50 | densenet201 | inceptionv4 |
//! bertbase | bertlarge`.

use dear::models::Model;
use dear::sched::{
    ByteSchedulerSim, ClusterConfig, DearScheduler, MgWfbpScheduler, OracleScheduler, Scheduler,
    WfbpScheduler,
};

fn parse_model(arg: Option<String>) -> Model {
    match arg.as_deref() {
        None | Some("resnet50") => Model::ResNet50,
        Some("densenet201") => Model::DenseNet201,
        Some("inceptionv4") => Model::InceptionV4,
        Some("bertbase") => Model::BertBase,
        Some("bertlarge") => Model::BertLarge,
        Some(other) => {
            eprintln!("unknown model {other:?}; using ResNet-50");
            Model::ResNet50
        }
    }
}

fn main() {
    let model = parse_model(std::env::args().nth(1)).profile();
    println!(
        "{}: {} layers, {} tensors, {:.1}M parameters, batch {}\n",
        model.name,
        model.num_layers(),
        model.num_tensors(),
        model.num_params() as f64 / 1e6,
        model.batch_size
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(WfbpScheduler::unfused()),
        Box::new(WfbpScheduler::horovod()),
        Box::new(WfbpScheduler::pytorch_ddp()),
        Box::new(MgWfbpScheduler::new()),
        Box::new(ByteSchedulerSim::default()),
        Box::new(DearScheduler::unfused()),
        Box::new(DearScheduler::with_buffer("DeAR-25MB", 25 << 20)),
        Box::new(OracleScheduler::wfbp()),
        Box::new(OracleScheduler::dear()),
    ];

    for cluster in [ClusterConfig::paper_10gbe(), ClusterConfig::paper_100gbib()] {
        println!("== {} ==", cluster.label);
        println!(
            "{:<14} {:>10} {:>12} {:>10} {:>12}",
            "scheduler", "iter (ms)", "exposed (ms)", "speedup", "efficiency"
        );
        for sched in &schedulers {
            let r = sched.simulate(&model, &cluster);
            println!(
                "{:<14} {:>10.1} {:>12.1} {:>9.1}x {:>11.1}%",
                r.scheduler,
                r.iter_time.as_millis_f64(),
                r.exposed_comm.as_millis_f64(),
                r.speedup_vs_single_gpu(cluster.workers),
                100.0 * r.scaling_efficiency(cluster.workers),
            );
        }
        println!();
    }

    // Gantt sketch of two DeAR iterations (compute vs comm streams).
    println!("DeAR pipeline, two iterations on 64x10GbE (F=feed-forward, B=backprop,");
    println!("R=reduce-scatter, A=all-gather):\n");
    let tl = DearScheduler::with_buffer("DeAR", 25 << 20).build(
        &model,
        &ClusterConfig::paper_10gbe(),
        2,
    );
    print!("{}", tl.render_gantt(100));
}

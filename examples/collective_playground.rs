//! Collective-communication playground: runs every all-reduce algorithm in
//! the crate on real data over an in-process cluster, checks they agree,
//! and prints the α-β cost model's predictions for the paper's networks —
//! including the zero-overhead decoupling identity the whole system rests
//! on (cost(RS) + cost(AG) = cost(AR) for rings, Eqs. 3–5).
//!
//! Run with: `cargo run --release --example collective_playground`

use dear::collectives::{
    hierarchical_all_reduce, run_cluster_with, AllReduceAlgorithm, ClusterShape, CostModel,
    ReduceOp,
};

fn main() {
    let world = 8;
    let elems = 10_000;

    println!("== real execution: {world} ranks, {elems} elements per rank ==\n");
    let algorithms = [
        AllReduceAlgorithm::Ring,
        AllReduceAlgorithm::RecursiveHalvingDoubling,
        AllReduceAlgorithm::DoubleBinaryTree,
        AllReduceAlgorithm::NaiveTree,
    ];
    let mut outputs = Vec::new();
    for algo in algorithms {
        let results = run_cluster_with(world, algo, |comm| {
            let mut data: Vec<f32> = (0..elems)
                .map(|i| ((comm.rank() + 1) * (i % 17 + 1)) as f32)
                .collect();
            comm.all_reduce(&mut data, ReduceOp::Sum).unwrap();
            data
        });
        println!(
            "{algo:?}: rank agreement {}",
            results.windows(2).all(|w| w[0] == w[1])
        );
        outputs.push(results[0].clone());
    }
    let reference = &outputs[0];
    for (algo, out) in algorithms.iter().zip(&outputs) {
        let max_diff = out
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!("{algo:?} vs Ring: max |diff| = {max_diff}");
    }

    println!("\n== hierarchical (2 nodes x 4 GPUs) ==");
    let shape = ClusterShape::new(2, 4);
    let results = run_cluster_with(shape.world(), AllReduceAlgorithm::Ring, |comm| {
        let mut data = vec![comm.rank() as f32; 64];
        hierarchical_all_reduce(comm.transport(), shape, &mut data, ReduceOp::Sum).unwrap();
        data[0]
    });
    println!("sum of ranks 0..8 = {} (expected 28)", results[0]);

    println!("\n== cost model: the decoupling identity (64 workers) ==\n");
    for (name, net) in [
        ("10GbE", CostModel::ten_gbe()),
        ("100GbIB", CostModel::hundred_gb_ib()),
    ] {
        println!("{name}:");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "size", "AR (ms)", "RS (ms)", "AG (ms)", "RS+AG", "overhead"
        );
        for mb in [1u64, 10, 100] {
            let bytes = mb << 20;
            let ar = net.ring_all_reduce(bytes, 64).as_millis_f64();
            let rs = net.ring_reduce_scatter(bytes, 64).as_millis_f64();
            let ag = net.ring_all_gather(bytes, 64).as_millis_f64();
            println!(
                "{:>7}M {ar:>10.2} {rs:>10.2} {ag:>10.2} {:>10.2} {:>8.2}%",
                mb,
                rs + ag,
                100.0 * ((rs + ag) / ar - 1.0)
            );
        }
        println!();
    }
    println!("decoupling an all-reduce into RS + AG costs exactly nothing — the");
    println!("property DeAR's fine-grained pipelining is built on.");
}

//! Transformer-flavoured training with DeAR: LayerNorm blocks optimized by
//! **Adam**, with the sharded optimizer state (both moments) living on the
//! communication threads and re-distributed transparently when the fusion
//! buffer changes — the combination BERT-class workloads need.
//!
//! Run with: `cargo run --release --example adam_layernorm`

use dear::{run_training, OptimKind, TrainConfig};
use dear_minidnn::{accuracy, BlobDataset, LayerNorm, Linear, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An MLP with LayerNorm after every hidden linear layer (the residual
/// stream normalization pattern of transformer blocks, sans attention).
fn build_model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Sequential::new().push(Linear::new(12, 64, &mut rng));
    for _ in 0..3 {
        net = net
            .push(LayerNorm::new(64))
            .push(Relu::new())
            .push(Linear::new(64, 64, &mut rng));
    }
    net.push(LayerNorm::new(64))
        .push(Linear::new(64, 6, &mut rng))
}

fn main() {
    let world = 4;
    let global_batch = 64;
    let steps = 120;
    let data = BlobDataset::new(12, 6, 0.5, 99);

    let config = TrainConfig {
        lr: 0.005,
        weight_decay: 1e-4,
        fusion_buffer: Some(8 << 10),
        optim: OptimKind::adam_default(),
        ..TrainConfig::default()
    };

    println!(
        "Adam + LayerNorm on {world} workers ({} learnable tensors)\n",
        build_model()
            .layers()
            .iter()
            .map(|l| l.params().len())
            .sum::<usize>()
    );
    let results = run_training(world, config, |handle| {
        let rank = handle.rank();
        let mut net = build_model();
        let mut optim = handle.into_optim(&net);
        for step in 0..steps {
            let (x, labels) = data.shard(step, global_batch, rank, world);
            let loss = optim.train_step(&mut net, &x, &labels).unwrap();
            if rank == 0 && step % 24 == 0 {
                println!("  step {step:>3}: loss {loss:.4}");
            }
            if step == steps / 2 {
                // Mid-training re-bucketing: Adam's m and v shards migrate
                // to their new owners via the redistribution collective.
                optim.synchronize(&mut net).unwrap();
                optim.set_fusion_buffer(&net, Some(64 << 10));
                if rank == 0 {
                    println!("  re-bucketed to 64 KB ({} groups)", optim.num_groups());
                }
            }
        }
        optim.synchronize(&mut net).unwrap();
        let (x, labels) = data.batch(777_777, 512);
        (accuracy(&net.forward(&x), &labels), net.flat_params())
    });

    let (acc, params0) = &results[0];
    println!("\nvalidation accuracy: {:.1}%", acc * 100.0);
    for (rank, (_, params)) in results.iter().enumerate().skip(1) {
        assert_eq!(params0, params, "rank {rank} diverged");
    }
    println!("all ranks bit-identical through Adam + re-bucketing: OK");
    assert!(*acc > 0.8, "accuracy too low: {acc}");
}

pub use dear_collectives as collectives;
pub use dear_core::*;
pub use dear_fusion as fusion;
pub use dear_minidnn as minidnn;
pub use dear_models as models;
pub use dear_net as net;
pub use dear_sched as sched;
pub use dear_sim as sim;
